//! The hardware timing core: CPU clock + caches + memory controller.
//!
//! [`Hw`] implements [`PhysMem`], so all OS-level code (kernel, checkpoint
//! engine, SSP/HSCC engines) reads and writes simulated physical memory
//! through the same cache hierarchy and devices as application accesses —
//! NVM-hosted structures pay NVM latency, hot metadata hits in cache, and
//! dirty write-backs keep the crash-durability image honest.

use kindle_cache::Hierarchy;
use kindle_cpu::{Activity, Core};
use kindle_mem::MemoryController;
use kindle_types::{AccessKind, Cycles, PhysAddr, PhysMem, Rng64, CACHE_LINE};

use crate::config::MachineConfig;

/// Outcome of one data-line access through the hardware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LineOutcome {
    /// Total latency charged.
    pub latency: Cycles,
    /// Whether the access missed in the LLC (HSCC counts these).
    pub llc_miss: bool,
}

/// The timing hardware. See the module docs.
#[derive(Clone, Debug)]
pub struct Hw {
    /// The in-order core: clock + activity accounting + registers.
    pub core: Core,
    /// L1/L2/LLC stack.
    pub caches: Hierarchy,
    /// Memory controller: devices + data image + durability.
    pub mc: MemoryController,
    /// When set, operations move data but charge zero time and bypass the
    /// caches (models hardware DMA engines / baselines without OS cost).
    free_mode: bool,
}

impl Hw {
    /// Builds the hardware from a machine config.
    pub fn new(cfg: &MachineConfig) -> Self {
        Hw {
            core: Core::new(),
            caches: Hierarchy::new(&cfg.caches),
            mc: MemoryController::new(&cfg.mem),
            free_mode: false,
        }
    }

    /// Switches free mode (zero-time data movement) on or off, returning
    /// the previous setting.
    pub fn set_free_mode(&mut self, free: bool) -> bool {
        std::mem::replace(&mut self.free_mode, free)
    }

    /// Is free mode active?
    pub fn free_mode(&self) -> bool {
        self.free_mode
    }

    /// Switches the activity label (delegates to the core).
    pub fn set_activity(&mut self, a: Activity) -> Activity {
        self.core.set_activity(a)
    }

    /// One cache-line access with full timing: cache levels, line fill,
    /// dirty write-backs (which also commit NVM durability).
    pub fn access_line(&mut self, pa: PhysAddr, kind: AccessKind) -> LineOutcome {
        if self.free_mode {
            return LineOutcome { latency: Cycles::ZERO, llc_miss: false };
        }
        let res = self.caches.access(pa, kind);
        let mut latency = res.latency;
        let now = self.core.now();
        if res.needs_fill {
            latency += self.mc.access(pa, AccessKind::Read, now);
        }
        for wb in &res.writebacks {
            latency += self.mc.access(*wb, AccessKind::Write, now);
            self.mc.commit_line(*wb);
        }
        self.core.advance(latency);
        LineOutcome { latency, llc_miss: res.llc_miss }
    }

    /// Simulates a power failure at the hardware level: caches lose all
    /// contents (dirty data included) and the memory controller rolls back
    /// non-durable NVM lines and wipes DRAM.
    pub fn crash(&mut self) {
        self.caches.invalidate_all();
        self.mc.crash();
    }

    /// Power failure without ADR: caches lose everything, and whatever the
    /// controller had accepted but not yet drained to media is torn at
    /// 8-byte granularity (the NVM persist atom) using `rng`.
    pub fn crash_torn(&mut self, rng: &mut Rng64) {
        self.caches.invalidate_all();
        self.mc.crash_torn(rng);
    }
}

impl PhysMem for Hw {
    fn touch(&mut self, pa: PhysAddr, kind: AccessKind) -> Cycles {
        self.access_line(pa, kind).latency
    }

    fn read_u64(&mut self, pa: PhysAddr) -> u64 {
        if !self.free_mode {
            self.access_line(pa, AccessKind::Read);
        }
        let mut b = [0u8; 8];
        self.mc.load_bytes(pa, &mut b);
        u64::from_le_bytes(b)
    }

    fn write_u64(&mut self, pa: PhysAddr, value: u64) {
        if !self.free_mode {
            self.access_line(pa, AccessKind::Write);
        }
        self.mc.store_bytes(pa, &value.to_le_bytes());
        if self.free_mode {
            // DMA-style stores are durable immediately.
            self.mc.commit_line(pa);
        }
    }

    fn read_bytes(&mut self, pa: PhysAddr, buf: &mut [u8]) {
        if !self.free_mode {
            let mut line = pa.line_base();
            let end = pa + buf.len() as u64;
            while line < end {
                self.access_line(line, AccessKind::Read);
                line += CACHE_LINE as u64;
            }
        }
        self.mc.load_bytes(pa, buf);
    }

    fn write_bytes(&mut self, pa: PhysAddr, data: &[u8]) {
        if !self.free_mode {
            let mut line = pa.line_base();
            let end = pa + data.len() as u64;
            while line < end {
                self.access_line(line, AccessKind::Write);
                line += CACHE_LINE as u64;
            }
        }
        self.mc.store_bytes(pa, data);
        if self.free_mode {
            let mut line = pa.line_base();
            let end = pa + data.len() as u64;
            while line < end {
                self.mc.commit_line(line);
                line += CACHE_LINE as u64;
            }
        }
    }

    fn clwb(&mut self, pa: PhysAddr) {
        if self.free_mode {
            self.mc.commit_line(pa);
            return;
        }
        // clwb itself is cheap; the write-back traffic is what costs.
        self.core.advance(Cycles::new(2));
        if self.caches.clwb(pa) {
            let now = self.core.now();
            let lat = self.mc.access(pa, AccessKind::Write, now);
            self.core.advance(lat);
        }
        self.mc.commit_line(pa);
    }

    fn sfence(&mut self) {
        if !self.free_mode {
            self.core.advance(Cycles::new(10));
        }
    }

    fn persist_barrier(&mut self) {
        if self.free_mode {
            // DMA-style stores commit straight to media; nothing to drain.
            return;
        }
        self.sfence();
        let now = self.core.now();
        let lat = self.mc.nvm_drain_latency(now);
        self.core.advance(lat);
    }

    fn advance(&mut self, cost: Cycles) {
        if !self.free_mode {
            self.core.advance(cost);
        }
    }

    fn now(&self) -> Cycles {
        self.core.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::MemKind;

    fn hw() -> (Hw, PhysAddr, PhysAddr) {
        let cfg = MachineConfig::small();
        let nvm = cfg.mem.layout.range(MemKind::Nvm).base;
        (Hw::new(&cfg), PhysAddr::new(0x10000), nvm + 0x10000)
    }

    #[test]
    fn caching_reduces_latency() {
        let (mut hw, dram, _) = hw();
        let first = hw.access_line(dram, AccessKind::Read);
        let second = hw.access_line(dram, AccessKind::Read);
        assert!(first.llc_miss);
        assert!(!second.llc_miss);
        assert!(second.latency < first.latency);
    }

    #[test]
    fn nvm_miss_slower_than_dram_miss() {
        let (mut hw, dram, nvm) = hw();
        let d = hw.access_line(dram, AccessKind::Read).latency;
        let n = hw.access_line(nvm, AccessKind::Read).latency;
        assert!(n > d, "nvm fill {n} vs dram fill {d}");
    }

    #[test]
    fn data_round_trip_through_phys_mem() {
        let (mut hw, dram, _) = hw();
        hw.write_u64(dram, 0xfeed_f00d);
        assert_eq!(hw.read_u64(dram), 0xfeed_f00d);
        hw.write_bytes(dram + 64, b"hello");
        let mut b = [0u8; 5];
        hw.read_bytes(dram + 64, &mut b);
        assert_eq!(&b, b"hello");
    }

    #[test]
    fn unflushed_nvm_write_lost_on_crash() {
        let (mut hw, _, nvm) = hw();
        hw.write_u64(nvm, 42);
        hw.crash();
        assert_eq!(hw.read_u64(nvm), 0, "dirty line never written back");
    }

    #[test]
    fn clwb_makes_nvm_write_durable() {
        let (mut hw, _, nvm) = hw();
        hw.write_u64(nvm, 42);
        hw.clwb(nvm);
        hw.sfence();
        hw.crash();
        assert_eq!(hw.read_u64(nvm), 42);
    }

    #[test]
    fn natural_eviction_also_commits() {
        let (mut hw, _, nvm) = hw();
        hw.write_u64(nvm, 77);
        // Thrash far more lines than the hierarchy holds to force the dirty
        // line out (same kind so the line lands in NVM-adjacent sets).
        let llc_lines = (2u64 << 20) / 64;
        for i in 1..=(llc_lines * 3) {
            hw.access_line(nvm + i * 64, AccessKind::Read);
        }
        hw.crash();
        assert_eq!(hw.read_u64(nvm), 77, "evicted dirty line must have committed");
    }

    #[test]
    fn free_mode_moves_data_without_time() {
        let (mut hw, _, nvm) = hw();
        hw.set_free_mode(true);
        let t0 = hw.now();
        hw.write_u64(nvm, 9);
        hw.copy_page(nvm.page_base(), (nvm + 4096).page_base());
        assert_eq!(hw.now(), t0, "free mode charges nothing");
        hw.set_free_mode(false);
        assert_eq!(hw.read_u64(nvm), 9);
        // Free-mode writes are durable.
        hw.crash();
        assert_eq!(hw.read_u64(nvm), 9);
    }

    #[test]
    fn activity_attribution_flows_through() {
        let (mut hw, dram, _) = hw();
        hw.set_activity(Activity::Checkpoint);
        hw.access_line(dram, AccessKind::Read);
        assert!(hw.core.breakdown().get(Activity::Checkpoint) > Cycles::ZERO);
        assert_eq!(hw.core.breakdown().get(Activity::User), Cycles::ZERO);
    }
}
