//! The kernel-daemon registry.
//!
//! Background kernel work — checkpoint flushes, HSCC migration scans,
//! page-table scrubbing — used to be wired ad hoc into `Machine::step` with
//! one hand-rolled thread-id field and `match` arm per engine. This module
//! replaces that with a single [`KernelDaemon`] abstraction: each daemon
//! names itself, says which [`KThreadKind`] its kthread carries, whether its
//! engine is configured on a given machine, when a pass is due, and how to
//! run one pass. The machine registers every configured daemon through
//! [`kindle_os::Scheduler::register_daemon`] and dispatches them
//! generically — adding a daemon no longer touches the scheduler plumbing.
//!
//! A daemon holds no state of its own: engine state lives on the [`Machine`]
//! (so crash/reboot rebuilds it with the kernel), and the dispatch path
//! hands the daemon a `&mut Machine` for one pass.

use std::rc::Rc;

use kindle_cpu::Activity;
use kindle_os::{DaemonKind, KThreadKind};
use kindle_types::sanitize::ThreadId;
use kindle_types::Result;

use crate::machine::Machine;

/// One background kernel daemon, dispatched on its own simulated kthread
/// when `kthreads` is on (or inline from the timer loop when off).
pub trait KernelDaemon: std::fmt::Debug {
    /// Thread-table name (`ckptd`, `migrated`, `scrubd`, ...).
    fn name(&self) -> &'static str;

    /// Kind tag the daemon's kthread carries in the scheduler.
    fn thread_kind(&self) -> KThreadKind;

    /// True when the machine's configuration actually runs this daemon
    /// (its engine exists). Disabled daemons are never registered.
    fn enabled(&self, m: &Machine) -> bool;

    /// True when the next pass is due.
    fn due(&self, m: &Machine) -> bool;

    /// Runs one pass on behalf of foreground process `pid`, then returns
    /// control (the machine puts the kthread back to sleep).
    ///
    /// # Errors
    ///
    /// Propagates engine failures.
    fn run(&self, m: &mut Machine, pid: u32) -> Result<()>;
}

/// A registered daemon: the implementation plus its kthread id (`None`
/// when `kthreads` is off or the engine is not configured — the daemon
/// then runs inline on the main context).
#[derive(Clone, Debug)]
pub(crate) struct DaemonSlot {
    pub(crate) kind: DaemonKind,
    pub(crate) daemon: Rc<dyn KernelDaemon>,
    pub(crate) tid: Option<ThreadId>,
}

/// The built-in daemon for `kind`.
pub fn builtin(kind: DaemonKind) -> Rc<dyn KernelDaemon> {
    match kind {
        DaemonKind::Checkpoint => Rc::new(CheckpointDaemon),
        DaemonKind::Migration => Rc::new(MigrationDaemon),
        DaemonKind::Scrub => Rc::new(ScrubDaemon),
        DaemonKind::Patrol => Rc::new(PatrolDaemon),
    }
}

/// `ckptd`: periodic process-persistence checkpoints.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointDaemon;

impl KernelDaemon for CheckpointDaemon {
    fn name(&self) -> &'static str {
        "ckptd"
    }

    fn thread_kind(&self) -> KThreadKind {
        KThreadKind::CheckpointDaemon
    }

    fn enabled(&self, m: &Machine) -> bool {
        m.persist.is_some()
    }

    fn due(&self, m: &Machine) -> bool {
        m.persist.as_ref().is_some_and(|e| e.due(m.now()))
    }

    fn run(&self, m: &mut Machine, _pid: u32) -> Result<()> {
        let mut result = Ok(());
        if let Some(engine) = m.persist.as_mut() {
            let prev = m.hw.set_activity(Activity::Checkpoint);
            result = engine.tick(&mut m.hw, &mut m.kernel).map(|_| ());
            m.hw.set_activity(prev);
        }
        result
    }
}

/// `migrated`: HSCC page-migration scans.
#[derive(Clone, Copy, Debug)]
pub struct MigrationDaemon;

impl KernelDaemon for MigrationDaemon {
    fn name(&self) -> &'static str {
        "migrated"
    }

    fn thread_kind(&self) -> KThreadKind {
        KThreadKind::MigrationDaemon
    }

    fn enabled(&self, m: &Machine) -> bool {
        // The hardware-only baseline keeps migrations off the thread table:
        // there is no OS context to charge.
        m.hscc.is_some() && m.config().hscc_os_mode
    }

    fn due(&self, m: &Machine) -> bool {
        m.hscc.as_ref().is_some_and(|e| e.due(m.now()))
    }

    fn run(&self, m: &mut Machine, pid: u32) -> Result<()> {
        let os_mode = m.config().hscc_os_mode;
        let mut result = Ok(());
        let prev = m.hw.set_activity(Activity::MigrationScan);
        let was_free = if os_mode {
            m.hw.free_mode()
        } else {
            // Hardware-only baseline: migrations happen with no OS time
            // charged.
            m.hw.set_free_mode(true)
        };
        if let Some(engine) = m.hscc.as_mut() {
            result = engine.migrate(&mut m.hw, &mut m.kernel, &mut m.tlb, pid).map(|_| ());
        }
        if !os_mode {
            m.hw.set_free_mode(was_free);
        }
        m.hw.set_activity(prev);
        result
    }
}

/// `scrubd`: page-table read-verify against the kernel's shadow metadata.
#[derive(Clone, Copy, Debug)]
pub struct ScrubDaemon;

impl KernelDaemon for ScrubDaemon {
    fn name(&self) -> &'static str {
        "scrubd"
    }

    fn thread_kind(&self) -> KThreadKind {
        KThreadKind::ScrubDaemon
    }

    fn enabled(&self, m: &Machine) -> bool {
        m.scrub.is_some()
    }

    fn due(&self, m: &Machine) -> bool {
        m.scrub.as_ref().is_some_and(|s| s.due(m.now()))
    }

    fn run(&self, m: &mut Machine, _pid: u32) -> Result<()> {
        if m.scrub.is_none() {
            return Ok(());
        }
        let prev = m.hw.set_activity(Activity::Os);
        let outcome = m.kernel.scrub_pt_frames(&mut m.hw);
        m.hw.set_activity(prev);
        let outcome = outcome?;
        for &(owner, _old_frame) in &outcome.frames_retired {
            // The table moved: any cached translation may have been filled
            // through the old frame.
            m.flush_process_tlb(owner)?;
        }
        m.drain_meta()?;
        let now = m.now();
        if let Some(state) = m.scrub.as_mut() {
            state.complete_pass(now, &outcome);
        }
        Ok(())
    }
}

/// `patrold`: data-frame checksum patrol over the general NVM pool.
#[derive(Clone, Copy, Debug)]
pub struct PatrolDaemon;

impl KernelDaemon for PatrolDaemon {
    fn name(&self) -> &'static str {
        "patrold"
    }

    fn thread_kind(&self) -> KThreadKind {
        KThreadKind::PatrolDaemon
    }

    fn enabled(&self, m: &Machine) -> bool {
        m.patrol.is_some()
    }

    fn due(&self, m: &Machine) -> bool {
        m.patrol.as_ref().is_some_and(|s| s.due(m.now()))
    }

    fn run(&self, m: &mut Machine, _pid: u32) -> Result<()> {
        if m.patrol.is_none() {
            return Ok(());
        }
        let prev = m.hw.set_activity(Activity::Os);
        let outcome = m.patrol_data_frames();
        m.hw.set_activity(prev);
        let outcome = outcome?;
        for &owner in &outcome.killed {
            // The owner died with translations still cached.
            m.flush_process_tlb(owner)?;
        }
        m.drain_meta()?;
        let now = m.now();
        if let Some(state) = m.patrol.as_mut() {
            state.complete_pass(now, &outcome);
        }
        Ok(())
    }
}
