//! Statistics roll-up across the whole machine.

use kindle_cache::HierarchyStats;
use kindle_cpu::{Activity, ActivityBreakdown, CpuStats};
use kindle_hscc::HsccStats;
use kindle_mem::MemStats;
use kindle_os::{KernelStats, PatrolStats, ScrubStats};
use kindle_persist::CheckpointStats;
use kindle_ssp::SspStats;
use kindle_tlb::TlbStats;
use kindle_types::Cycles;

use crate::machine::Machine;

/// One snapshot of every counter in the machine.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimReport {
    /// Total simulated time.
    pub total_cycles: Cycles,
    /// Time per activity.
    pub breakdown: ActivityBreakdown,
    /// Instruction/memory-op counts.
    pub cpu: CpuStats,
    /// Cache hierarchy counters.
    pub caches: HierarchyStats,
    /// (L1 TLB, L2 TLB) counters.
    pub tlb: (TlbStats, TlbStats),
    /// Page-walker counters.
    pub walks: u64,
    /// Walker fault count.
    pub walk_faults: u64,
    /// Memory device counters.
    pub mem: MemStats,
    /// Kernel counters.
    pub kernel: KernelStats,
    /// Checkpoint engine counters, if enabled.
    pub checkpoint: Option<CheckpointStats>,
    /// SSP counters, if enabled.
    pub ssp: Option<SspStats>,
    /// HSCC counters, if enabled.
    pub hscc: Option<HsccStats>,
    /// Scrub daemon counters, if enabled.
    pub scrub: Option<ScrubStats>,
    /// Patrol daemon counters, if enabled.
    pub patrol: Option<PatrolStats>,
    /// TLB shootdowns performed by the OS.
    pub tlb_shootdowns: u64,
    /// Simulated kernel-thread context switches (0 unless `kthreads` on).
    pub kthread_switches: u64,
}

impl SimReport {
    /// Collects a snapshot from a machine.
    pub fn collect(m: &Machine) -> Self {
        SimReport {
            total_cycles: m.now(),
            breakdown: m.hw.core.breakdown().clone(),
            cpu: m.hw.core.stats().clone(),
            caches: m.hw.caches.stats(),
            tlb: m.tlb.stats(),
            walks: m.walker.walks,
            walk_faults: m.walker.faults,
            mem: m.hw.mc.stats(),
            kernel: m.kernel.stats().clone(),
            checkpoint: m.persist.as_ref().map(|e| e.stats().clone()),
            ssp: m.ssp.as_ref().map(|e| e.stats().clone()),
            hscc: m.hscc.as_ref().map(|e| e.stats().clone()),
            scrub: m.scrub.as_ref().map(|s| s.stats().clone()),
            patrol: m.patrol.as_ref().map(|s| s.stats().clone()),
            tlb_shootdowns: m.tlb_shootdowns(),
            kthread_switches: m.kernel.sched.switches(),
        }
    }

    /// Time attributed to user execution.
    pub fn user_cycles(&self) -> Cycles {
        self.breakdown.get(Activity::User)
    }

    /// Time attributed to anything but user execution.
    pub fn overhead_cycles(&self) -> Cycles {
        self.breakdown.non_user()
    }

    /// Renders the counters in gem5 `stats.txt` style (`name  value  #
    /// comment`) — the format the original Kindle's Python scripts parse.
    pub fn to_stats_text(&self) -> String {
        use std::fmt::Write as _;
        let mut rows: Vec<(String, u64, &str)> = Vec::new();
        let mut stat = |name: &str, v: u64, desc: &'static str| {
            rows.push((name.to_string(), v, desc));
        };
        stat("sim_cycles", self.total_cycles.as_u64(), "Simulated cycles at 3 GHz");
        stat("sim_insts", self.cpu.instructions, "Instructions retired");
        stat("sim_mem_ops", self.cpu.mem_ops, "Memory operations issued");
        for (act, cy) in self.breakdown.iter() {
            stat(&format!("cycles.{}", act.label()), cy.as_u64(), "Cycles in this activity");
        }
        stat("l1d.hits", self.caches.l1.hits, "L1D hits");
        stat("l1d.misses", self.caches.l1.misses, "L1D misses");
        stat("l2.hits", self.caches.l2.hits, "L2 hits");
        stat("l2.misses", self.caches.l2.misses, "L2 misses");
        stat("llc.hits", self.caches.llc.hits, "LLC hits");
        stat("llc.misses", self.caches.llc.misses, "LLC misses");
        stat("llc.writebacks", self.caches.memory_writebacks, "Lines written back to memory");
        stat("dtlb.l1.hits", self.tlb.0.hits, "L1 TLB hits");
        stat("dtlb.l1.misses", self.tlb.0.misses, "L1 TLB misses");
        stat("dtlb.l2.hits", self.tlb.1.hits, "L2 TLB hits");
        stat("dtlb.l2.misses", self.tlb.1.misses, "L2 TLB misses");
        stat("walker.walks", self.walks, "Hardware page-table walks");
        stat("walker.faults", self.walk_faults, "Walks ending in a page fault");
        stat("mem.dram.reads", self.mem.dram.reads, "DRAM reads");
        stat("mem.dram.writes", self.mem.dram.writes, "DRAM writes");
        stat("mem.dram.row_hits", self.mem.dram.row_hits, "DRAM row-buffer hits");
        stat("mem.nvm.reads", self.mem.nvm.reads, "NVM reads");
        stat("mem.nvm.writes", self.mem.nvm.writes, "NVM writes");
        stat("mem.nvm.write_stalls", self.mem.nvm.write_stalls, "NVM write-buffer stalls");
        stat("mem.nvm.lines_committed", self.mem.nvm_lines_committed, "NVM lines made durable");
        stat("os.page_faults", self.kernel.page_faults, "Demand-paging faults");
        stat("os.mmaps", self.kernel.mmaps, "mmap system calls");
        stat("os.munmaps", self.kernel.munmaps, "munmap system calls");
        stat("os.tlb_shootdowns", self.tlb_shootdowns, "TLB shootdowns");
        stat("os.kthread_switches", self.kthread_switches, "Kernel-thread context switches");
        if let Some(c) = &self.checkpoint {
            stat("persist.checkpoints", c.checkpoints, "Checkpoints completed");
            stat("persist.list_checked", c.list_checked, "Mapping-list entries checked");
            stat("persist.list_written", c.list_written, "Mapping-list entries written");
        }
        if let Some(sp) = &self.ssp {
            stat("ssp.intervals", sp.intervals, "Consistency intervals committed");
            stat("ssp.pages_registered", sp.pages_registered, "Shadow page pairs");
            stat("ssp.lines_flushed", sp.data_lines_flushed, "Data lines clwb'd");
            stat("ssp.pages_consolidated", sp.pages_consolidated, "Pages merged");
        }
        if let Some(h) = &self.hscc {
            stat("hscc.intervals", h.intervals, "Migration intervals");
            stat("hscc.pages_migrated", h.pages_migrated, "Pages migrated to DRAM");
            stat("hscc.copybacks", h.copybacks, "Dirty copy-backs to NVM");
            stat("hscc.selection_cycles", h.selection_cycles.as_u64(), "Page-selection cycles");
            stat("hscc.copy_cycles", h.copy_cycles.as_u64(), "Page-copy cycles");
        }
        if let Some(sc) = &self.scrub {
            stat("scrub.passes", sc.passes, "Scrub verify passes");
            stat("scrub.lines_detected", sc.lines_detected, "Corrupted table lines found");
            stat("scrub.lines_corrected", sc.lines_corrected, "Table lines healed in place");
            stat("scrub.frames_retired", sc.frames_retired, "Table frames retired");
        }
        if let Some(p) = &self.patrol {
            stat("patrol.passes", p.passes, "Patrol verify batches");
            stat("patrol.frames_checked", p.frames_checked, "Data frames checksum-verified");
            stat("patrol.lines_detected", p.lines_detected, "Corrupted data lines found");
            stat("patrol.lines_healed", p.lines_healed, "Data lines healed in place");
            stat("patrol.frames_poisoned", p.frames_poisoned, "Mapped frames poisoned");
            stat("patrol.frames_retired", p.frames_retired, "Unmapped frames retired");
            stat("patrol.procs_killed", p.procs_killed, "Processes killed on poison");
        }
        let mut s = String::new();
        let _ = writeln!(s, "---------- Begin Simulation Statistics ----------");
        for (name, v, desc) in rows {
            let _ = writeln!(s, "{name:<44} {v:>16} # {desc}");
        }
        let _ = writeln!(s, "---------- End Simulation Statistics   ----------");
        s
    }

    /// Renders a compact human-readable summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "total: {} ({} user, {} overhead)",
            self.total_cycles,
            self.user_cycles(),
            self.overhead_cycles()
        );
        for (act, cy) in self.breakdown.iter() {
            let _ = writeln!(s, "  {:<20} {}", act.label(), cy);
        }
        let _ = writeln!(
            s,
            "caches: L1 {:.1}% | L2 {:.1}% | LLC {:.1}% miss",
            self.caches.l1.miss_rate() * 100.0,
            self.caches.l2.miss_rate() * 100.0,
            self.caches.llc.miss_rate() * 100.0
        );
        let _ = writeln!(
            s,
            "mem: {} dram ops, {} nvm ops ({} stalls)",
            self.mem.dram.reads + self.mem.dram.writes,
            self.mem.nvm.reads + self.mem.nvm.writes,
            self.mem.nvm.write_stalls
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use kindle_types::{AccessKind, MapFlags, Prot};

    #[test]
    fn report_reflects_activity() {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let pid = m.spawn_process().unwrap();
        let va = m.mmap(pid, 8192, Prot::RW, MapFlags::NVM).unwrap();
        m.access(pid, va, AccessKind::Write).unwrap();
        let r = m.report();
        assert!(r.total_cycles > Cycles::ZERO);
        assert!(r.user_cycles() > Cycles::ZERO);
        assert!(r.overhead_cycles() > Cycles::ZERO, "fault handling is overhead");
        assert_eq!(r.kernel.page_faults, 1);
        assert!(r.walks >= 1);
        assert!(!r.summary().is_empty());
        assert!(r.checkpoint.is_none());
        let stats = r.to_stats_text();
        assert!(stats.contains("sim_cycles"));
        assert!(stats.contains("os.page_faults"));
        assert!(stats.lines().count() > 25);
    }
}
