//! The full simulated machine.

use std::rc::Rc;

use kindle_cpu::Activity;
use kindle_hscc::HsccEngine;
use kindle_mem::{PatrolOutcome, PowerSwitch};
use kindle_os::{
    DaemonKind, IntegrityOutcome, KThreadKind, Kernel, KernelConfig, PatrolPassOutcome,
    PatrolState, RetireOutcome, ScrubState, UnmapOutcome, PATROL_BATCH_FRAMES,
};
use kindle_persist::{recover_all, CheckpointEngine, RecoveryReport};
use kindle_ssp::SspEngine;
use kindle_tlb::{MsrFile, PageWalker, TlbEntry, TwoLevelTlb};
use kindle_trace::ReplayProgram;
use kindle_types::sanitize::{self, ThreadId};
use kindle_types::{
    AccessKind, Cycles, KindleError, MapFlags, MemKind, Pfn, PhysAddr, PhysMem, Prot, Pte, Result,
    Rng64, VirtAddr, CACHE_LINE,
};

use crate::config::MachineConfig;
use crate::daemon::{self, DaemonSlot, KernelDaemon};
use crate::hw::Hw;
use crate::report::SimReport;

/// Options for a trace replay.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReplayOptions {
    /// Wrap the replay in an SSP failure-atomic section
    /// (`checkpoint_start` / `checkpoint_end`).
    pub fase: bool,
    /// Cap on replayed operations (`None` = whole trace).
    pub max_ops: Option<u64>,
}

/// Summary of one replay.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ReplayReport {
    /// Operations replayed.
    pub ops: u64,
    /// Simulated time from first to last operation.
    pub cycles: Cycles,
    /// Demand-paging faults taken during the replay.
    pub faults: u64,
    /// Base address chosen for each trace area.
    pub area_bases: Vec<VirtAddr>,
}

/// Snapshot of the translation used by one access.
#[derive(Clone, Copy, Debug)]
struct EntryInfo {
    pfn: Pfn,
    writable: bool,
    mem_kind: MemKind,
    dirty: bool,
    ssp: Option<kindle_tlb::SspTlbExt>,
    pte_pa: PhysAddr,
}

/// The machine: hardware + OS + optional prototype engines.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    /// Timing hardware (clock, caches, memory).
    pub hw: Hw,
    /// Two-level TLB.
    pub tlb: TwoLevelTlb,
    /// Hardware page-table walker.
    pub walker: PageWalker,
    /// Model-specific registers (SSP/HSCC hardware configuration).
    pub msr: MsrFile,
    /// The gemOS-analog kernel.
    pub kernel: Kernel,
    /// Process-persistence checkpoint engine.
    pub persist: Option<CheckpointEngine>,
    /// SSP prototype engine.
    pub ssp: Option<SspEngine>,
    /// HSCC prototype engine.
    pub hscc: Option<HsccEngine>,
    /// Scrub daemon engine state (schedule + counters), when configured.
    pub scrub: Option<ScrubState>,
    /// Patrol daemon engine state (schedule + pool cursor + counters),
    /// when configured.
    pub patrol: Option<PatrolState>,
    tlb_shootdowns: u64,
    /// Process whose translations currently occupy the TLB (no ASIDs, as
    /// in gemOS: a context switch flushes).
    active_pid: Option<u32>,
    /// Registered background daemons (see [`crate::daemon`]); each carries
    /// its kthread id when `kthreads` is on and its engine is configured.
    daemons: Vec<DaemonSlot>,
}

impl Machine {
    /// Boots a machine.
    ///
    /// # Errors
    ///
    /// Propagates kernel/engine construction failures.
    pub fn new(mut cfg: MachineConfig) -> Result<Self> {
        if cfg.mem.faults.is_none() {
            cfg.mem.faults = crate::config::thread_media_faults();
        }
        if crate::config::thread_legacy_maps() {
            cfg.mem.legacy_maps = true;
        }
        if cfg.mem.backend.is_none() {
            cfg.mem.backend = crate::config::thread_backend();
        }
        let mut hw = Hw::new(&cfg);
        let kcfg = KernelConfig {
            memory_map: cfg.mem.layout.clone(),
            pt_mode: cfg.pt_mode,
            costs: cfg.costs.clone(),
            dram_reserved_frames: 256,
        };
        let mut kernel = Kernel::new(kcfg, &mut hw)?;
        let persist = cfg
            .checkpoint
            .as_ref()
            .map(|s| CheckpointEngine::new(&kernel.layout, cfg.pt_mode, s.interval, s.max_procs));
        let ssp = cfg.ssp.as_ref().map(|s| SspEngine::new(&kernel.layout, s.clone()));
        let hscc = match &cfg.hscc {
            Some(h) => Some(HsccEngine::new(&mut hw, &mut kernel, h.clone())?),
            None => None,
        };
        let scrub = cfg.scrub_interval.map(ScrubState::new);
        let patrol = cfg.patrol_interval.map(PatrolState::new);
        let mut m = Machine {
            hw,
            tlb: TwoLevelTlb::new(&cfg.tlb),
            walker: PageWalker::new(),
            msr: MsrFile::new(),
            kernel,
            persist,
            ssp,
            hscc,
            cfg,
            scrub,
            patrol,
            tlb_shootdowns: 0,
            active_pid: None,
            daemons: Vec::new(),
        };
        m.register_daemons();
        Ok(m)
    }

    /// Builds the daemon registry from the configured kinds and, when
    /// `kthreads` is on, registers each enabled daemon's kthread with the
    /// scheduler. A daemon whose engine is absent (or that runs without
    /// kthreads) keeps `tid = None` and is dispatched inline from the
    /// timer loop instead.
    fn register_daemons(&mut self) {
        sanitize::set_current_thread(ThreadId::MAIN);
        let kinds = self.cfg.daemons.clone();
        let mut slots = Vec::with_capacity(kinds.len());
        for kind in kinds {
            let daemon = daemon::builtin(kind);
            let tid = (self.cfg.kthreads && daemon.enabled(self))
                .then(|| self.kernel.sched.register_daemon(daemon.name(), daemon.thread_kind()));
            slots.push(DaemonSlot { kind, daemon, tid });
        }
        self.daemons = slots;
    }

    /// The registered daemon of `kind`, with its kthread id if any.
    fn daemon_slot(&self, kind: DaemonKind) -> Option<(Rc<dyn KernelDaemon>, Option<ThreadId>)> {
        self.daemons.iter().find(|s| s.kind == kind).map(|s| (s.daemon.clone(), s.tid))
    }

    /// The kthread id registered for daemon `kind`, if any.
    fn daemon_tid(&self, kind: DaemonKind) -> Option<ThreadId> {
        self.daemons.iter().find(|s| s.kind == kind).and_then(|s| s.tid)
    }

    /// Dispatches one due pass of daemon `kind`: on its kthread when one is
    /// registered (wake + drive the scheduler until daemons drain), inline
    /// on the current context otherwise.
    fn dispatch_daemon(&mut self, kind: DaemonKind, pid: u32) -> Result<()> {
        match self.daemon_slot(kind) {
            Some((_, Some(tid))) => {
                self.kernel.sched.wake(tid);
                while self.step(pid)? {}
                Ok(())
            }
            Some((daemon, None)) => daemon.run(self, pid),
            // Not in the registry (e.g. an engine armed without its daemon
            // kind configured): still run the work inline.
            None => daemon::builtin(kind).run(self, pid),
        }
    }

    /// Switches the running simulated thread to `next`, charging the
    /// configured `kthread_switch` cost and emitting a
    /// [`sanitize::Event::ThreadSwitch`] if it differs from the current
    /// one. No-op for a switch to the already-running thread.
    fn context_switch_to(&mut self, next: ThreadId) {
        let from = self.kernel.sched.current();
        if from == next || self.kernel.sched.thread(next).is_none() {
            return;
        }
        self.hw.advance(Cycles::new(self.kernel.costs.kthread_switch));
        self.kernel.sched.switch_to(next);
        sanitize::set_current_thread(next);
        let cycle = self.hw.now().as_u64();
        sanitize::emit(|| sanitize::Event::ThreadSwitch { from, to: next, cycle });
    }

    /// Runs one scheduler quantum: picks the next runnable kthread
    /// (round-robin), context-switches to it, and dispatches it. Daemons
    /// run one pass on behalf of foreground process `pid` and go back to
    /// sleep; returns `true` when a daemon ran, `false` when control is
    /// back with the main thread. Drive `while m.step(pid)? {}` to drain
    /// all woken daemons.
    ///
    /// # Errors
    ///
    /// Propagates engine failures from the dispatched daemon.
    pub fn step(&mut self, pid: u32) -> Result<bool> {
        let next = self.kernel.sched.pick_next();
        let kind = match self.kernel.sched.thread(next) {
            Some(t) => t.kind,
            None => return Ok(false),
        };
        self.context_switch_to(next);
        if kind == KThreadKind::Main {
            return Ok(false);
        }
        let daemon =
            self.daemons.iter().find(|s| s.daemon.thread_kind() == kind).map(|s| s.daemon.clone());
        let mut result = Ok(());
        if let Some(daemon) = daemon {
            if daemon.due(self) {
                result = daemon.run(self, pid);
            }
        }
        self.kernel.sched.sleep(next);
        result?;
        Ok(true)
    }

    /// Active configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.hw.now()
    }

    /// TLB shootdowns performed so far.
    pub fn tlb_shootdowns(&self) -> u64 {
        self.tlb_shootdowns
    }

    /// Creates a process.
    ///
    /// # Errors
    ///
    /// Propagates pool exhaustion.
    pub fn spawn_process(&mut self) -> Result<u32> {
        let prev = self.hw.set_activity(Activity::Os);
        let pid = self.kernel.create_process(&mut self.hw);
        self.hw.set_activity(prev);
        let pid = pid?;
        self.drain_meta()?;
        Ok(pid)
    }

    pub(crate) fn drain_meta(&mut self) -> Result<()> {
        if let Some(engine) = self.persist.as_mut() {
            let recs = self.kernel.take_meta_records();
            if !recs.is_empty() {
                let prev = self.hw.set_activity(Activity::Os);
                let r = engine.on_meta_records(&mut self.hw, &mut self.kernel, recs);
                self.hw.set_activity(prev);
                r?;
            }
        } else {
            self.kernel.take_meta_records();
        }
        Ok(())
    }

    fn shootdown(&mut self, outcome: &UnmapOutcome, pid: u32) -> Result<()> {
        for vpn in &outcome.unmapped {
            self.hw.advance(Cycles::new(20));
            if let Some(entry) = self.tlb.invalidate(*vpn) {
                self.tlb_shootdowns += 1;
                self.on_tlb_dropped(pid, entry)?;
            }
        }
        Ok(())
    }

    /// Flushes every cached translation of `pid` — a page-table frame was
    /// relocated, so any entry may have been filled through the old frame.
    pub(crate) fn flush_process_tlb(&mut self, pid: u32) -> Result<()> {
        self.hw.advance(Cycles::new(20));
        self.tlb_shootdowns += 1;
        let dropped = self.tlb.flush_all();
        for entry in dropped {
            self.on_tlb_dropped(pid, entry)?;
        }
        Ok(())
    }

    /// `mmap` without a placement hint.
    ///
    /// # Errors
    ///
    /// As [`Kernel::sys_mmap`].
    pub fn mmap(&mut self, pid: u32, len: u64, prot: Prot, flags: MapFlags) -> Result<VirtAddr> {
        self.mmap_at(pid, None, len, prot, flags)
    }

    /// `mmap` with an optional hint / FIXED placement.
    ///
    /// # Errors
    ///
    /// As [`Kernel::sys_mmap`].
    pub fn mmap_at(
        &mut self,
        pid: u32,
        hint: Option<VirtAddr>,
        len: u64,
        prot: Prot,
        flags: MapFlags,
    ) -> Result<VirtAddr> {
        let prev = self.hw.set_activity(Activity::Os);
        let r = self.kernel.sys_mmap(&mut self.hw, pid, hint, len, prot, flags);
        self.hw.set_activity(prev);
        let va = r?;
        self.drain_meta()?;
        self.poll_timers(pid)?;
        Ok(va)
    }

    /// `munmap`, with TLB shootdown.
    ///
    /// # Errors
    ///
    /// As [`Kernel::sys_munmap`].
    pub fn munmap(&mut self, pid: u32, addr: VirtAddr, len: u64) -> Result<()> {
        let prev = self.hw.set_activity(Activity::Os);
        let r = self.kernel.sys_munmap(&mut self.hw, pid, addr, len);
        self.hw.set_activity(prev);
        let outcome = r?;
        self.shootdown(&outcome, pid)?;
        self.drain_meta()?;
        self.poll_timers(pid)?;
        Ok(())
    }

    /// `mprotect`, with TLB shootdown on affected pages.
    ///
    /// # Errors
    ///
    /// As [`Kernel::sys_mprotect`].
    pub fn mprotect(&mut self, pid: u32, addr: VirtAddr, len: u64, prot: Prot) -> Result<()> {
        let prev = self.hw.set_activity(Activity::Os);
        let r = self.kernel.sys_mprotect(&mut self.hw, pid, addr, len, prot);
        self.hw.set_activity(prev);
        let outcome = r?;
        self.shootdown(&outcome, pid)?;
        self.drain_meta()?;
        self.poll_timers(pid)?;
        Ok(())
    }

    /// `mremap` (move semantics), with TLB shootdown.
    ///
    /// # Errors
    ///
    /// As [`Kernel::sys_mremap`].
    pub fn mremap(
        &mut self,
        pid: u32,
        old_addr: VirtAddr,
        old_len: u64,
        new_len: u64,
    ) -> Result<VirtAddr> {
        let prev = self.hw.set_activity(Activity::Os);
        let r = self.kernel.sys_mremap(&mut self.hw, pid, old_addr, old_len, new_len);
        self.hw.set_activity(prev);
        let (va, outcome) = r?;
        self.shootdown(&outcome, pid)?;
        self.drain_meta()?;
        self.poll_timers(pid)?;
        Ok(va)
    }

    /// `fork`: duplicates a process (eager page copy, as in gemOS).
    ///
    /// # Errors
    ///
    /// As [`Kernel::sys_fork`].
    pub fn fork(&mut self, parent: u32) -> Result<u32> {
        let prev = self.hw.set_activity(Activity::Os);
        let r = self.kernel.sys_fork(&mut self.hw, parent);
        self.hw.set_activity(prev);
        let child = r?;
        self.drain_meta()?;
        self.poll_timers(parent)?;
        Ok(child)
    }

    /// One 8-byte access.
    ///
    /// # Errors
    ///
    /// [`KindleError::Unmapped`]/[`KindleError::ProtectionFault`] for
    /// invalid accesses.
    pub fn access(&mut self, pid: u32, va: VirtAddr, kind: AccessKind) -> Result<Cycles> {
        self.access_sized(pid, va, 8, kind)
    }

    /// An access spanning `size` bytes (split into line-sized pieces).
    ///
    /// # Errors
    ///
    /// As [`Machine::access`].
    pub fn access_sized(
        &mut self,
        pid: u32,
        va: VirtAddr,
        size: u32,
        kind: AccessKind,
    ) -> Result<Cycles> {
        let mut total = Cycles::ZERO;
        let mut cur = va;
        let end = va + size.max(1) as u64;
        while cur < end {
            total += self.access_line(pid, cur, kind)?;
            cur = cur.line_base() + CACHE_LINE as u64;
        }
        self.poll_timers(pid)?;
        Ok(total)
    }

    /// Core per-line access path: TLB → (walk → fault) → routing → caches.
    fn access_line(&mut self, pid: u32, va: VirtAddr, kind: AccessKind) -> Result<Cycles> {
        self.hw.core.count_mem_op();
        // No ASIDs: switching processes flushes the TLB (context switch).
        if self.active_pid != Some(pid) {
            if let Some(prev) = self.active_pid {
                let dropped = self.tlb.flush_all();
                for entry in dropped {
                    self.on_tlb_dropped(prev, entry)?;
                }
                self.hw.advance(Cycles::new(self.kernel.costs.kthread_switch));
            }
            self.active_pid = Some(pid);
        }
        let vpn = va.page_number();
        let start = self.hw.now();

        // 1. TLB.
        let (tlb_lat, hit, dropped) = self.tlb.lookup(vpn);
        self.hw.advance(tlb_lat);
        let mut info = hit.map(|e| EntryInfo {
            pfn: e.pfn,
            writable: e.writable,
            mem_kind: e.mem_kind,
            dirty: e.dirty,
            ssp: e.ssp,
            pte_pa: e.pte_pa,
        });
        if let Some(entry) = dropped {
            self.on_tlb_dropped(pid, entry)?;
        }

        // 2. Miss: hardware walk, faulting into the kernel if needed.
        let info = match info.take() {
            Some(i) => i,
            None => self.fill_tlb(pid, va, kind)?,
        };

        if kind.is_write() && !info.writable {
            return Err(KindleError::ProtectionFault(va));
        }

        // 3. First write to a clean page: hardware sets the PTE dirty bit.
        if kind.is_write() && !info.dirty {
            let pte = Pte::from_bits(self.hw.read_u64(info.pte_pa));
            self.hw.write_u64(info.pte_pa, pte.with_flags(Pte::DIRTY).bits());
            if let Some(e) = self.tlb.peek_mut(vpn) {
                e.dirty = true;
            }
        }

        // 4. SSP routing: writes inside a FASE go to the non-current page.
        let line_idx = va.line_in_page();
        let target_pfn = match info.ssp {
            Some(ext) if kind.is_write() => ext.write_target(info.pfn, line_idx),
            Some(ext) => ext.read_target(info.pfn, line_idx),
            None => info.pfn,
        };
        let line_pa = target_pfn.base() + (line_idx * CACHE_LINE) as u64;
        // Tell the sanitizer which NVM lines the application observes, so
        // it can prove no read ever consumed a known-corrupt line.
        if !kind.is_write() && info.mem_kind == MemKind::Nvm {
            sanitize::emit(|| sanitize::Event::DataLineRead { line: line_pa.as_u64() });
        }
        let out = self.hw.access_line(line_pa, kind);

        // 5. SSP bookkeeping for routed writes.
        if info.ssp.is_some() && kind.is_write() {
            if let Some(e) = self.tlb.peek_mut(vpn) {
                if let Some(ext) = e.ssp.as_mut() {
                    ext.updated |= 1 << line_idx;
                }
            }
            if let Some(engine) = self.ssp.as_mut() {
                engine.on_write(line_pa);
            }
        }

        // 6. HSCC access counting on LLC misses to NVM pages.
        if self.hscc.is_some() && out.llc_miss && info.mem_kind == MemKind::Nvm {
            let mut writeout: Option<(PhysAddr, u64)> = None;
            if let Some(e) = self.tlb.peek_mut(vpn) {
                e.access_count = e.access_count.saturating_add(1);
                if !e.count_written_this_interval {
                    e.count_written_this_interval = true;
                    writeout = Some((e.pte_pa, e.access_count as u64));
                    e.access_count = 0;
                }
            }
            if let Some((pte_pa, count)) = writeout {
                // Once-per-interval hardware RMW of the PTE count.
                let pte = Pte::from_bits(self.hw.read_u64(pte_pa));
                self.hw.write_u64(pte_pa, pte.with_access_count(pte.access_count() + count).bits());
            }
        }

        Ok(self.hw.now() - start)
    }

    /// Hardware walk (fault on demand) and TLB fill.
    fn fill_tlb(&mut self, pid: u32, va: VirtAddr, kind: AccessKind) -> Result<EntryInfo> {
        let vpn = va.page_number();
        let root = self.kernel.process(pid)?.aspace.root();
        let mut walker = std::mem::take(&mut self.walker);
        let first = walker.walk_and_mark(&mut self.hw, root, va, kind.is_write());
        self.walker = walker;

        let outcome = match first {
            Ok(o) => o,
            Err(_) => {
                // Page fault into the kernel.
                let prev = self.hw.set_activity(Activity::Os);
                let fault = self.kernel.handle_fault(&mut self.hw, pid, va, kind);
                self.hw.set_activity(prev);
                fault?;
                self.drain_meta()?;
                let root = self.kernel.process(pid)?.aspace.root();
                let mut walker = std::mem::take(&mut self.walker);
                let second = walker.walk_and_mark(&mut self.hw, root, va, kind.is_write());
                self.walker = walker;
                second.map_err(|_| KindleError::Corrupted("fault handler did not map page"))?
            }
        };

        let pte = outcome.pte;
        // A poisoned mapping must never be cached or served: the frame
        // under it lost its content to an uncorrectable media fault.
        if pte.is_poisoned() {
            return Err(KindleError::PagePoisoned(va));
        }
        let mut entry = TlbEntry::new(vpn, pte.pfn(), pte.is_writable(), pte.mem_kind())
            .with_pte_pa(outcome.pte_pa);
        entry.dirty = pte.is_dirty();

        // SSP: register NVM pages touched inside a FASE.
        if pte.mem_kind() == MemKind::Nvm && self.msr.in_nvm_range(va) {
            if let Some(engine) = self.ssp.as_mut() {
                if engine.in_fase() {
                    let ext = engine.register_page(
                        &mut self.hw,
                        &mut self.kernel.pools,
                        vpn,
                        pte.pfn(),
                    )?;
                    entry.ssp = Some(ext);
                }
            }
        }

        let info = EntryInfo {
            pfn: entry.pfn,
            writable: entry.writable,
            mem_kind: entry.mem_kind,
            dirty: entry.dirty,
            ssp: entry.ssp,
            pte_pa: entry.pte_pa,
        };
        if let Some(droppped) = self.tlb.install(entry) {
            self.on_tlb_dropped(pid, droppped)?;
        }
        Ok(info)
    }

    /// Hardware-side handling of an entry leaving the TLB hierarchy.
    pub(crate) fn on_tlb_dropped(&mut self, pid: u32, entry: TlbEntry) -> Result<()> {
        if entry.ssp.is_some() {
            if let Some(engine) = self.ssp.as_mut() {
                engine.on_tlb_evict(&mut self.hw, &entry);
            }
        }
        if entry.access_count > 0 {
            if let Some(engine) = self.hscc.as_mut() {
                engine.on_tlb_evict(&mut self.hw, &mut self.kernel, pid, &entry);
            }
        }
        Ok(())
    }

    /// One patrold batch: walks up to [`PATROL_BATCH_FRAMES`] allocated
    /// general-pool NVM frames from the engine's cursor (wrapping at the
    /// pool end) and checksum-verifies each against the controller's
    /// store-time sums. A mismatching line is healed through the ECP
    /// erasure decode when possible; a frame that stays corrupt is lost
    /// data, and the kernel poisons its mapping (killing the owner) or
    /// quarantines it when unmapped. Page-table frames are skipped —
    /// scrubd's shadow verify both detects *and repairs* those.
    ///
    /// The caller (normally the `patrold` daemon) must flush cached
    /// translations for every pid in the outcome's `killed` list and fold
    /// the outcome into [`Machine::patrol`] via `complete_pass`.
    ///
    /// # Errors
    ///
    /// Propagates kernel failures while poisoning or retiring a frame.
    pub fn patrol_data_frames(&mut self) -> Result<PatrolPassOutcome> {
        let mut out = PatrolPassOutcome::default();
        let Some(state) = self.patrol.as_ref() else {
            return Ok(out);
        };
        let pool_start = self.kernel.pools.nvm.inner().start();
        let capacity = self.kernel.pools.nvm.inner().capacity();
        if capacity == 0 {
            return Ok(out);
        }
        let mut cursor = state.cursor() % capacity;
        // Walk the pfn space from the cursor, wrapping at most once, and
        // verify at most one batch of allocated data frames.
        let mut scanned = 0;
        while scanned < capacity && out.frames_checked < PATROL_BATCH_FRAMES {
            let pfn = pool_start + cursor;
            cursor = (cursor + 1) % capacity;
            scanned += 1;
            if !self.kernel.pools.nvm.is_allocated(pfn)
                || self.kernel.table_frame_owner(pfn).is_some()
            {
                continue;
            }
            out.frames_checked += 1;
            self.hw.advance(Cycles::new(self.kernel.costs.scrub_frame_op));
            match self.hw.mc.patrol_frame(pfn.base().as_u64()) {
                PatrolOutcome::Clean => out.frames_clean += 1,
                PatrolOutcome::Healed { lines } => {
                    self.hw.advance(Cycles::new(self.kernel.costs.scrub_line_op * lines as u64));
                    out.lines_detected += lines as u64;
                    out.lines_healed += lines as u64;
                }
                PatrolOutcome::Uncorrectable { lines } => {
                    out.lines_detected += lines.len() as u64;
                    match self.kernel.poison_or_retire_frame(&mut self.hw, pfn)? {
                        IntegrityOutcome::Poisoned { pid, .. } => {
                            out.frames_poisoned += 1;
                            out.killed.push(pid);
                        }
                        IntegrityOutcome::Retired(_) => out.frames_retired += 1,
                    }
                }
            }
        }
        if let Some(state) = self.patrol.as_mut() {
            state.set_cursor(cursor);
        }
        Ok(out)
    }

    /// Fires every engine whose deadline passed. Called after each access
    /// and syscall.
    fn poll_timers(&mut self, pid: u32) -> Result<()> {
        loop {
            let mut fired = false;

            // Frames whose media failed since the last poll — wear-out
            // retries exhausted, or a scrub pass out of correction budget.
            // Verify the content first: a wear-out victim still holds what
            // was written (its checksums match), so the OS retires it
            // content-preservingly (remapping a mapped data page onto a
            // fresh frame; relocating a live page table). A frame whose
            // checksum stays wrong even after the patrol heal is lost data
            // — that takes the poison path instead of copying corrupt
            // bytes forward.
            for raw in self.hw.mc.take_failed_frames() {
                let pfn = Pfn::new(raw);
                let verdict = self.hw.mc.patrol_frame(pfn.base().as_u64());
                let prev = self.hw.set_activity(Activity::Os);
                let r = match verdict {
                    PatrolOutcome::Uncorrectable { .. } => {
                        self.kernel.poison_or_retire_frame(&mut self.hw, pfn)
                    }
                    _ => self
                        .kernel
                        .retire_nvm_frame(&mut self.hw, pfn)
                        .map(IntegrityOutcome::Retired),
                };
                self.hw.set_activity(prev);
                match r? {
                    IntegrityOutcome::Retired(RetireOutcome::Remapped {
                        pid: owner, vpn, ..
                    }) => {
                        self.hw.advance(Cycles::new(20));
                        if let Some(entry) = self.tlb.invalidate(vpn) {
                            self.tlb_shootdowns += 1;
                            self.on_tlb_dropped(owner, entry)?;
                        }
                    }
                    IntegrityOutcome::Retired(RetireOutcome::TableRelocated { pid: owner }) => {
                        self.flush_process_tlb(owner)?;
                    }
                    IntegrityOutcome::Retired(RetireOutcome::Quarantined) => {}
                    IntegrityOutcome::Poisoned { pid: owner, .. } => {
                        self.flush_process_tlb(owner)?;
                    }
                }
                self.drain_meta()?;
                fired = true;
            }

            let now = self.hw.now();

            if self.persist.as_ref().is_some_and(|e| e.due(now)) {
                self.dispatch_daemon(DaemonKind::Checkpoint, pid)?;
                fired = true;
            }

            if let Some(engine) = self.ssp.as_mut() {
                if engine.consolidation_due(now) {
                    let prev = self.hw.set_activity(Activity::Consolidation);
                    engine.consolidate(&mut self.hw, &self.kernel.costs);
                    self.hw.set_activity(prev);
                    fired = true;
                }
                if engine.interval_due(self.hw.now()) {
                    let prev = self.hw.set_activity(Activity::SspInterval);
                    engine.end_interval(&mut self.hw, &mut self.tlb, &self.kernel.costs);
                    self.hw.set_activity(prev);
                    fired = true;
                }
            }

            if self.hscc.as_ref().is_some_and(|e| e.due(now)) {
                self.dispatch_daemon(DaemonKind::Migration, pid)?;
                fired = true;
            }

            if self.scrub.as_ref().is_some_and(|s| s.due(self.hw.now())) {
                self.dispatch_daemon(DaemonKind::Scrub, pid)?;
                fired = true;
            }

            if self.patrol.as_ref().is_some_and(|s| s.due(self.hw.now())) {
                self.dispatch_daemon(DaemonKind::Patrol, pid)?;
                fired = true;
            }

            if !fired {
                return Ok(());
            }
        }
    }

    /// Runs the generated template program: mmaps its areas (NVM-tagged
    /// ones with `MAP_NVM`), optionally opens a FASE, and replays every
    /// record.
    ///
    /// # Errors
    ///
    /// Propagates mapping and access failures.
    pub fn run_replay(
        &mut self,
        pid: u32,
        program: &ReplayProgram,
        opts: ReplayOptions,
    ) -> Result<ReplayReport> {
        let mut bases = Vec::with_capacity(program.layout().areas().len());
        let mut nvm_lo = VirtAddr::new(u64::MAX);
        let mut nvm_hi = VirtAddr::new(0);
        for area in program.layout().areas() {
            let flags = if area.nvm { MapFlags::NVM } else { MapFlags::EMPTY };
            let va = self.mmap(pid, area.size, Prot::RW, flags)?;
            if area.nvm {
                nvm_lo = nvm_lo.min(va);
                nvm_hi = nvm_hi.max(va + area.size);
            }
            bases.push(va);
        }
        if opts.fase && nvm_lo < nvm_hi {
            self.msr.nvm_range = Some((nvm_lo, nvm_hi));
            let now = self.hw.now();
            if let Some(engine) = self.ssp.as_mut() {
                engine.fase_begin(now);
            }
        }

        let faults_before = self.kernel.stats().page_faults;
        let t0 = self.hw.now();
        let mut ops = 0u64;
        for rec in program.records() {
            if let Some(cap) = opts.max_ops {
                if ops >= cap {
                    break;
                }
            }
            let va = bases[rec.area.0 as usize] + rec.offset;
            self.access_sized(pid, va, rec.size.max(8), rec.op)?;
            ops += 1;
        }

        if opts.fase {
            if let Some(engine) = self.ssp.as_mut() {
                let prev = self.hw.set_activity(Activity::SspInterval);
                engine.end_interval(&mut self.hw, &mut self.tlb, &self.kernel.costs);
                engine.fase_end();
                self.hw.set_activity(prev);
            }
            self.msr.nvm_range = None;
        }

        Ok(ReplayReport {
            ops,
            cycles: self.hw.now() - t0,
            faults: self.kernel.stats().page_faults - faults_before,
            area_bases: bases,
        })
    }

    /// Simulates a power failure and reboot: hardware state is lost, NVM
    /// durable contents survive, and a fresh kernel boots (the prototype
    /// engines are re-created over the persistent regions).
    ///
    /// # Errors
    ///
    /// Propagates reboot failures.
    pub fn crash(&mut self) -> Result<()> {
        self.hw.crash();
        self.reboot()
    }

    /// Arms the memory controller with a fresh power switch and returns it.
    /// Cutting the switch freezes durability: every write-back accepted
    /// after the cut instant is discarded by the eventual crash.
    pub fn arm_power_cut(&mut self) -> PowerSwitch {
        let switch = PowerSwitch::new();
        self.hw.mc.arm_power_cut(switch.clone());
        switch
    }

    /// Like [`Machine::crash`], but without ADR: the controller's in-flight
    /// write buffer is lost, with the oldest pending lines torn at 8-byte
    /// granularity using `rng`.
    ///
    /// # Errors
    ///
    /// Propagates reboot failures.
    pub fn crash_torn(&mut self, rng: &mut Rng64) -> Result<()> {
        self.hw.crash_torn(rng);
        self.reboot()
    }

    fn reboot(&mut self) -> Result<()> {
        let _ = self.tlb.flush_all();
        self.active_pid = None;
        self.msr = MsrFile::new();
        let kcfg = KernelConfig {
            memory_map: self.cfg.mem.layout.clone(),
            pt_mode: self.cfg.pt_mode,
            costs: self.cfg.costs.clone(),
            dram_reserved_frames: 256,
        };
        self.kernel = Kernel::new(kcfg, &mut self.hw)?;
        if let Some(setup) = self.cfg.checkpoint.clone() {
            self.persist = Some(CheckpointEngine::new(
                &self.kernel.layout,
                self.cfg.pt_mode,
                setup.interval,
                setup.max_procs,
            ));
        }
        if let Some(ssp_cfg) = self.cfg.ssp.clone() {
            self.ssp = Some(SspEngine::new(&self.kernel.layout, ssp_cfg));
        }
        if let Some(hscc_cfg) = self.cfg.hscc.clone() {
            self.hscc = Some(HsccEngine::new(&mut self.hw, &mut self.kernel, hscc_cfg)?);
        }
        // Scrub state is rebuilt like the engines; the clock keeps running
        // across the crash, so re-anchor the schedule at the current time.
        self.scrub = self.cfg.scrub_interval.map(ScrubState::new);
        let now = self.hw.now();
        if let Some(s) = self.scrub.as_mut() {
            s.reset_schedule(now);
        }
        // Patrol state likewise. The walk cursor restarts at the pool base:
        // a reboot loses the in-memory walk position, while the recorded
        // checksums (NVM metadata) survive for the fresh walk to verify.
        self.patrol = self.cfg.patrol_interval.map(PatrolState::new);
        if let Some(p) = self.patrol.as_mut() {
            p.reset_schedule(now);
        }
        // The fresh kernel rebuilt the thread table; re-register daemons
        // and drop back to the main context.
        self.daemons.clear();
        sanitize::set_current_thread(ThreadId::MAIN);
        self.register_daemons();
        Ok(())
    }

    /// Runs the paper's recovery procedure over the saved-state area.
    ///
    /// # Errors
    ///
    /// `InvalidArgument` if checkpointing is not enabled; otherwise
    /// propagates recovery failures.
    pub fn recover(&mut self) -> Result<RecoveryReport> {
        let engine = self
            .persist
            .as_ref()
            .ok_or(KindleError::InvalidArgument("checkpointing not enabled"))?;
        let area = *engine.area();
        let log = *engine.log();
        let prev = self.hw.set_activity(Activity::Recovery);
        let report = recover_all(&mut self.hw, &mut self.kernel, &area, &log);
        if report.is_ok() && self.scrub.is_some() {
            // Scrubd verifies against shadow metadata, which "just restore
            // the PTBR" recovery does not rebuild: walk the adopted tables
            // once (charged as recovery work). Machines without scrubd
            // skip this, keeping plain persistent recovery as cheap as
            // ever.
            self.kernel.rehydrate_all_tables(&mut self.hw);
        }
        self.hw.set_activity(prev);
        report
    }

    /// Forces a checkpoint immediately (outside the periodic schedule).
    ///
    /// # Errors
    ///
    /// `InvalidArgument` if checkpointing is not enabled.
    pub fn checkpoint_now(&mut self) -> Result<()> {
        if self.persist.is_none() {
            return Err(KindleError::InvalidArgument("checkpointing not enabled"));
        }
        // With kthreads on, even explicit checkpoints execute on the
        // daemon's context, so their NVM writes carry its thread id.
        if let Some(tid) = self.daemon_tid(DaemonKind::Checkpoint) {
            self.kernel.sched.wake(tid);
            self.context_switch_to(tid);
            let mut r = Ok(());
            if let Some(engine) = self.persist.as_mut() {
                let prev = self.hw.set_activity(Activity::Checkpoint);
                r = engine.checkpoint(&mut self.hw, &mut self.kernel);
                self.hw.set_activity(prev);
            }
            self.kernel.sched.sleep(tid);
            self.context_switch_to(ThreadId::MAIN);
            return r;
        }
        let engine = self
            .persist
            .as_mut()
            .ok_or(KindleError::InvalidArgument("checkpointing not enabled"))?;
        let prev = self.hw.set_activity(Activity::Checkpoint);
        let r = engine.checkpoint(&mut self.hw, &mut self.kernel);
        self.hw.set_activity(prev);
        r
    }

    /// Gathers a full statistics snapshot.
    pub fn report(&self) -> SimReport {
        SimReport::collect(self)
    }

    /// Captures a deep, deterministic snapshot of the whole machine:
    /// hardware pools and data image, caches, TLBs, page tables (they live
    /// in the memory image), redo log and checkpoint area, kernel +
    /// scheduler + daemon registry, checksum/scrub/patrol state, and the
    /// ambient fault-model epoch of the capturing thread.
    ///
    /// The copy never carries power-cut wiring: a restored machine arms its
    /// own fresh [`PowerSwitch`] if it wants one. Cloning touches no
    /// simulated state, emits no sanitizer events, and advances no clocks,
    /// so `snapshot(); restore()` round-trips are invisible to the run.
    pub fn snapshot(&self) -> MachineSnapshot {
        let mut hw = self.hw.clone();
        hw.mc.disarm_power_cut();
        MachineSnapshot {
            cfg: self.cfg.clone(),
            hw,
            tlb: self.tlb.clone(),
            walker: self.walker.clone(),
            msr: self.msr.clone(),
            kernel: self.kernel.clone(),
            persist: self.persist.clone(),
            ssp: self.ssp.clone(),
            hscc: self.hscc.clone(),
            scrub: self.scrub.clone(),
            patrol: self.patrol.clone(),
            tlb_shootdowns: self.tlb_shootdowns,
            active_pid: self.active_pid,
            daemons: self.daemons.iter().map(|s| (s.kind, s.tid)).collect(),
            ambient_faults: crate::config::thread_media_faults(),
            ambient_legacy: crate::config::thread_legacy_maps(),
            ambient_backend: crate::config::thread_backend(),
        }
    }

    /// Rebuilds a machine from a snapshot (a *fork*: the snapshot stays
    /// usable, any number of machines can restore from it, and the caller
    /// may be on a different thread than the capturer).
    ///
    /// Restoring republishes the captured ambient fault-model epoch on the
    /// calling thread (so machines *constructed* later on this thread see
    /// the same media-fault model the capturer had) and re-anchors the
    /// sanitizer's current-thread stamp to the scheduler's running kthread.
    pub fn restore(snap: &MachineSnapshot) -> Self {
        crate::config::set_thread_media_faults(snap.ambient_faults.clone());
        crate::config::set_thread_legacy_maps(snap.ambient_legacy);
        crate::config::set_thread_backend(snap.ambient_backend);
        let m = Machine {
            cfg: snap.cfg.clone(),
            hw: snap.hw.clone(),
            tlb: snap.tlb.clone(),
            walker: snap.walker.clone(),
            msr: snap.msr.clone(),
            kernel: snap.kernel.clone(),
            persist: snap.persist.clone(),
            ssp: snap.ssp.clone(),
            hscc: snap.hscc.clone(),
            scrub: snap.scrub.clone(),
            patrol: snap.patrol.clone(),
            tlb_shootdowns: snap.tlb_shootdowns,
            active_pid: snap.active_pid,
            daemons: snap
                .daemons
                .iter()
                .map(|&(kind, tid)| DaemonSlot { kind, daemon: daemon::builtin(kind), tid })
                .collect(),
        };
        sanitize::set_current_thread(m.kernel.sched.current());
        m
    }
}

/// A deep capture of one [`Machine`] at an instant, made by
/// [`Machine::snapshot`] and turned back into a live machine by
/// [`Machine::restore`].
///
/// Daemon implementations are stateless unit structs behind `Rc`, so the
/// snapshot records only each slot's `(kind, tid)` and rebuilds the
/// implementations at restore — that (plus the atomic power switch) is what
/// keeps the whole capture `Send + Sync`, letting one snapshot pool be
/// shared by reference across `par_map` sweep workers.
#[derive(Clone, Debug)]
pub struct MachineSnapshot {
    cfg: MachineConfig,
    hw: Hw,
    tlb: TwoLevelTlb,
    walker: PageWalker,
    msr: MsrFile,
    kernel: Kernel,
    persist: Option<CheckpointEngine>,
    ssp: Option<SspEngine>,
    hscc: Option<HsccEngine>,
    scrub: Option<ScrubState>,
    patrol: Option<PatrolState>,
    tlb_shootdowns: u64,
    active_pid: Option<u32>,
    daemons: Vec<(DaemonKind, Option<ThreadId>)>,
    /// The capturing thread's ambient media-fault model
    /// ([`crate::config::thread_media_faults`]) — the fault-model *epoch*.
    /// Without it, a worker forking on a thread whose ambient model differs
    /// (or was never published) would build follow-on machines under a
    /// different fault regime than the golden run, silently changing stuck
    /// cells, wear state, and retry behaviour mid-sweep.
    ambient_faults: Option<kindle_mem::MediaFaultConfig>,
    /// The capturing thread's ambient legacy-maps request
    /// ([`crate::config::thread_legacy_maps`]), republished for the same
    /// reason: follow-on machines a worker builds must pick the same store
    /// layout as the golden run's.
    ambient_legacy: bool,
    /// The capturing thread's ambient far-tier backend choice
    /// ([`crate::config::thread_backend`]), republished for the same
    /// reason: follow-on machines a worker builds must run the same
    /// backend as the golden run's, or timing and fault semantics would
    /// diverge mid-sweep.
    ambient_backend: Option<kindle_mem::Backend>,
}

// Snapshots cross fork-join worker boundaries by shared reference, so the
// capture must never regress to holding `Rc`/`Cell` state.
const _: fn() = {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MachineSnapshot>
};

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::PAGE_SIZE;

    fn machine() -> (Machine, u32) {
        let mut m = Machine::new(MachineConfig::small()).unwrap();
        let pid = m.spawn_process().unwrap();
        (m, pid)
    }

    #[test]
    fn demand_paging_and_caching() {
        let (mut m, pid) = machine();
        let va = m.mmap(pid, 4 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
        let cold = m.access(pid, va, AccessKind::Write).unwrap();
        let warm = m.access(pid, va, AccessKind::Write).unwrap();
        assert!(cold > warm, "fault+walk+fill ({cold}) vs cached hit ({warm})");
        assert_eq!(m.kernel.stats().page_faults, 1);
    }

    #[test]
    fn unmapped_access_errors() {
        let (mut m, pid) = machine();
        let err = m.access(pid, VirtAddr::new(0x6666_0000), AccessKind::Read).unwrap_err();
        assert!(matches!(err, KindleError::Unmapped(_)));
    }

    #[test]
    fn write_to_readonly_faults() {
        let (mut m, pid) = machine();
        let va = m.mmap(pid, PAGE_SIZE as u64, Prot::READ, MapFlags::EMPTY).unwrap();
        m.access(pid, va, AccessKind::Read).unwrap();
        let err = m.access(pid, va, AccessKind::Write).unwrap_err();
        assert!(matches!(err, KindleError::ProtectionFault(_)));
    }

    #[test]
    fn munmap_shoots_down_tlb() {
        let (mut m, pid) = machine();
        let va = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
        m.access(pid, va, AccessKind::Write).unwrap();
        m.munmap(pid, va, PAGE_SIZE as u64).unwrap();
        assert_eq!(m.tlb_shootdowns(), 1);
        assert!(matches!(
            m.access(pid, va, AccessKind::Read).unwrap_err(),
            KindleError::Unmapped(_)
        ));
    }

    #[test]
    fn nvm_access_slower_than_dram() {
        let (mut m, pid) = machine();
        let nva = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
        let dva = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY).unwrap();
        // Fault both in, then drop the caches so the reads fill from the
        // devices.
        m.access(pid, nva, AccessKind::Read).unwrap();
        m.access(pid, dva, AccessKind::Read).unwrap();
        m.hw.caches.invalidate_all();
        let n = m.access(pid, nva + 1024, AccessKind::Read).unwrap();
        m.hw.caches.invalidate_all();
        let d = m.access(pid, dva + 1024, AccessKind::Read).unwrap();
        assert!(n > d, "nvm line fill {n} vs dram {d}");
    }

    #[test]
    fn sized_access_touches_every_line() {
        let (mut m, pid) = machine();
        let va = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY).unwrap();
        m.access_sized(pid, va, 256, AccessKind::Write).unwrap();
        let stats = m.hw.caches.stats();
        assert!(stats.l1.hits + stats.l1.misses >= 4, "256B = 4 lines");
    }

    #[test]
    fn periodic_checkpoint_fires_during_execution() {
        let cfg = MachineConfig::small().with_checkpointing(Cycles::from_millis(1));
        let mut m = Machine::new(cfg).unwrap();
        let pid = m.spawn_process().unwrap();
        let va = m.mmap(pid, 64 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
        // Touch pages until well past several intervals.
        let mut i = 0u64;
        while m.now() < Cycles::from_millis(5) {
            m.access(pid, va + (i % 64) * PAGE_SIZE as u64, AccessKind::Write).unwrap();
            i += 1;
        }
        let ckpt = m.persist.as_ref().unwrap().stats().checkpoints;
        assert!(ckpt >= 3, "expected several checkpoints, got {ckpt}");
        assert!(
            m.hw.core.breakdown().get(Activity::Checkpoint) > Cycles::ZERO,
            "checkpoint time attributed"
        );
    }

    /// Patrold machine with a controlled media model: no random stuck
    /// cells or wear, `correction_entries` of ECP budget per line.
    fn integrity_machine(correction_entries: u32) -> (Machine, u32) {
        let mut cfg = MachineConfig::small().with_patrol_interval(Cycles::from_micros(10));
        cfg.mem.faults = Some(kindle_mem::MediaFaultConfig {
            stuck_cells: 0,
            wear_limit: 0,
            correction_entries,
            ..kindle_mem::MediaFaultConfig::with_seed(7)
        });
        let mut m = Machine::new(cfg).unwrap();
        let pid = m.spawn_process().unwrap();
        (m, pid)
    }

    #[test]
    fn patrol_pass_heals_corrupt_data_frame() {
        let (mut m, pid) = integrity_machine(2);
        let va =
            m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM | MapFlags::POPULATE).unwrap();
        let pfn = m.kernel.translate(&mut m.hw, pid, va).unwrap().unwrap().pfn();
        let pa = pfn.base();
        for i in 0..8u64 {
            m.hw.write_u64(pa + i * 8, 0xabc0 + i);
        }
        assert!(m.hw.mc.degrade_line_bit(pa.as_u64(), 5), "stuck cell armed");
        assert_ne!(m.hw.read_u64(pa), 0xabc0, "the stuck bit corrupted the stored copy");

        let out = m.patrol_data_frames().unwrap();
        assert!(out.frames_checked >= 1);
        assert_eq!(out.lines_detected, 1);
        assert_eq!(out.lines_healed, 1);
        assert_eq!(out.frames_poisoned, 0);
        assert_eq!(m.hw.read_u64(pa), 0xabc0, "healed line is byte-identical");
        assert!(m.kernel.process(pid).is_ok(), "nobody dies on a healable fault");

        let again = m.patrol_data_frames().unwrap();
        assert_eq!(again.lines_detected, 0, "second pass finds the pool clean");
    }

    #[test]
    fn patrold_poisons_and_kills_when_budget_exhausted() {
        let (mut m, pid) = integrity_machine(0);
        let va =
            m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM | MapFlags::POPULATE).unwrap();
        let pfn = m.kernel.translate(&mut m.hw, pid, va).unwrap().unwrap().pfn();
        let pa = pfn.base();
        for i in 0..8u64 {
            m.hw.write_u64(pa + i * 8, 0xdead_0000 + i);
        }
        assert!(m.hw.mc.degrade_line_bit(pa.as_u64(), 11));

        // Drive the clock on an unrelated DRAM page until patrold fires
        // and the owner is killed out from under the loop.
        let drive = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY).unwrap();
        let mut verdict = None;
        for _ in 0..400_000 {
            match m.access(pid, drive, AccessKind::Write) {
                Ok(_) => {}
                Err(e) => {
                    verdict = Some(e);
                    break;
                }
            }
        }
        assert!(
            matches!(verdict, Some(KindleError::NoSuchProcess(p)) if p == pid),
            "owner killed with its translations flushed, got {verdict:?}"
        );
        let stats = m.patrol.as_ref().unwrap().stats().clone();
        assert!(stats.passes >= 1);
        assert_eq!(stats.frames_poisoned, 1);
        assert_eq!(stats.procs_killed, 1);
        assert_eq!(m.kernel.stats().procs_killed, 1);
        assert!(m.kernel.pools.nvm.is_allocated(pfn), "lost frame stays quarantined");
        let text = m.report().to_stats_text();
        assert!(text.contains("patrol.frames_poisoned"));
    }

    #[test]
    fn reboot_resets_patrol_cursor_and_schedule() {
        let (mut m, pid) = integrity_machine(2);
        let va =
            m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM | MapFlags::POPULATE).unwrap();
        m.access(pid, va, AccessKind::Write).unwrap();
        m.patrol.as_mut().unwrap().set_cursor(123);
        m.crash().unwrap();
        let p = m.patrol.as_ref().unwrap();
        assert_eq!(p.cursor(), 0, "walk restarts at the pool base after a crash");
        assert_eq!(p.stats().passes, 0, "counters are per-boot, like the other engines");
        assert!(!p.due(m.now()), "schedule re-anchored one interval past the reboot");
    }
}
