//! Set-associative TLBs and the two-level TLB stack.

use kindle_types::{Cycles, Vpn};

use crate::entry::TlbEntry;

/// Geometry/timing of one TLB level.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TlbConfig {
    /// Total entries.
    pub entries: usize,
    /// Ways per set (must divide `entries` into a power-of-two set count).
    pub assoc: usize,
    /// Latency of a hit at this level, in cycles.
    pub hit_cycles: u64,
}

impl TlbConfig {
    /// Typical L1 DTLB: 64 entries, 4-way, effectively free on hit.
    pub fn l1_default() -> Self {
        TlbConfig { entries: 64, assoc: 4, hit_cycles: 1 }
    }

    /// Typical L2 STLB: 1536 entries, 12-way, a few cycles.
    pub fn l2_default() -> Self {
        TlbConfig { entries: 1536, assoc: 12, hit_cycles: 7 }
    }

    fn sets(&self) -> usize {
        let sets = self.entries / self.assoc;
        assert!(sets.is_power_of_two(), "TLB set count must be a power of two");
        sets
    }
}

/// Hit/miss counters for one TLB level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TlbStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted by capacity/conflict.
    pub evictions: u64,
}

#[derive(Clone, Debug)]
struct Slot {
    entry: TlbEntry,
    stamp: u64,
}

/// One set-associative TLB level with LRU replacement.
#[derive(Clone, Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    sets: Vec<Vec<Slot>>,
    set_mask: u64,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(cfg: TlbConfig) -> Self {
        let sets = cfg.sets();
        Tlb {
            sets: vec![Vec::with_capacity(cfg.assoc); sets],
            set_mask: sets as u64 - 1,
            cfg,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// Level configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.as_u64() & self.set_mask) as usize
    }

    /// Looks up a translation, updating LRU and counting hit/miss.
    pub fn lookup(&mut self, vpn: Vpn) -> Option<&mut TlbEntry> {
        let pos = self.lookup_pos(vpn)?;
        Some(self.entry_at(pos))
    }

    /// One-pass lookup returning the entry's `(set, way)` position instead
    /// of a borrow, updating LRU and counting hit/miss. Callers that need
    /// the entry after further `&mut self` work (the two-level promotion
    /// dance) re-materialize the borrow with [`entry_at`](Self::entry_at) —
    /// a direct indexing, not a second scan.
    fn lookup_pos(&mut self, vpn: Vpn) -> Option<(usize, usize)> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(vpn);
        match self.sets[set].iter().position(|s| s.entry.vpn == vpn) {
            Some(way) => {
                self.sets[set][way].stamp = tick;
                self.stats.hits += 1;
                Some((set, way))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// The entry's `(set, way)` position without disturbing LRU or stats.
    fn pos_of(&self, vpn: Vpn) -> Option<(usize, usize)> {
        let set = self.set_of(vpn);
        self.sets[set].iter().position(|s| s.entry.vpn == vpn).map(|way| (set, way))
    }

    /// Direct access to a position returned by
    /// [`lookup_pos`](Self::lookup_pos) / [`pos_of`](Self::pos_of).
    fn entry_at(&mut self, (set, way): (usize, usize)) -> &mut TlbEntry {
        &mut self.sets[set][way].entry
    }

    /// Peeks without disturbing LRU or stats.
    pub fn peek(&self, vpn: Vpn) -> Option<&TlbEntry> {
        let set = self.set_of(vpn);
        self.sets[set].iter().map(|s| &s.entry).find(|e| e.vpn == vpn)
    }

    /// Inserts (or replaces) a translation; returns the evicted entry if the
    /// set was full.
    pub fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        self.tick += 1;
        let tick = self.tick;
        let assoc = self.cfg.assoc;
        let set = self.set_of(entry.vpn);
        let slots = &mut self.sets[set];
        if let Some(slot) = slots.iter_mut().find(|s| s.entry.vpn == entry.vpn) {
            slot.entry = entry;
            slot.stamp = tick;
            return None;
        }
        if slots.len() < assoc {
            slots.push(Slot { entry, stamp: tick });
            return None;
        }
        let victim_idx = slots
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.stamp)
            .map(|(i, _)| i)
            .expect("assoc >= 1");
        let victim = std::mem::replace(&mut slots[victim_idx], Slot { entry, stamp: tick });
        self.stats.evictions += 1;
        Some(victim.entry)
    }

    /// Removes and returns the translation for `vpn` if present.
    pub fn invalidate(&mut self, vpn: Vpn) -> Option<TlbEntry> {
        let set = self.set_of(vpn);
        let slots = &mut self.sets[set];
        let idx = slots.iter().position(|s| s.entry.vpn == vpn)?;
        Some(slots.swap_remove(idx).entry)
    }

    /// Removes every translation, returning them (metadata write-back).
    pub fn flush_all(&mut self) -> Vec<TlbEntry> {
        let mut out = Vec::new();
        for set in &mut self.sets {
            out.extend(set.drain(..).map(|s| s.entry));
        }
        out
    }

    /// Iterates over all resident entries mutably (interval-end scans).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut TlbEntry> {
        self.sets.iter_mut().flatten().map(|s| &mut s.entry)
    }

    /// Number of resident translations.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

/// Configuration of the L1+L2 TLB stack.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TwoLevelTlbConfig {
    /// First-level (fast, small) TLB.
    pub l1: TlbConfig,
    /// Second-level (slower, large) TLB.
    pub l2: TlbConfig,
}

impl Default for TwoLevelTlbConfig {
    fn default() -> Self {
        TwoLevelTlbConfig { l1: TlbConfig::l1_default(), l2: TlbConfig::l2_default() }
    }
}

/// The L1 + L2 TLB stack.
///
/// On an L2 hit the entry is promoted to L1; entries evicted from L1 demote
/// to L2; entries evicted from L2 leave the hierarchy and are returned so
/// the prototypes can write their metadata (SSP bitmaps, HSCC counters)
/// back to memory, as the paper's hardware does on TLB eviction.
#[derive(Clone, Debug)]
pub struct TwoLevelTlb {
    l1: Tlb,
    l2: Tlb,
}

impl TwoLevelTlb {
    /// Creates an empty stack.
    pub fn new(cfg: &TwoLevelTlbConfig) -> Self {
        TwoLevelTlb { l1: Tlb::new(cfg.l1.clone()), l2: Tlb::new(cfg.l2.clone()) }
    }

    /// Looks up `vpn`. Returns the latency of the lookup, a mutable
    /// reference to the entry if found, and any entry that fell out of the
    /// hierarchy during promotion.
    pub fn lookup(&mut self, vpn: Vpn) -> (Cycles, Option<&mut TlbEntry>, Option<TlbEntry>) {
        let l1_lat = Cycles::new(self.l1.config().hit_cycles);
        let l2_lat = Cycles::new(self.l2.config().hit_cycles);
        // One pass over the set: the position re-materializes the borrow.
        if let Some(pos) = self.l1.lookup_pos(vpn) {
            return (l1_lat, Some(self.l1.entry_at(pos)), None);
        }
        if let Some(entry) = self.l2.invalidate(vpn) {
            self.l2.stats.hits += 1;
            let mut dropped = None;
            if let Some(demoted) = self.l1.insert(entry) {
                if let Some(out) = self.l2.insert(demoted) {
                    dropped = Some(out);
                }
            }
            let pos = self.l1.pos_of(vpn).expect("entry promoted to L1 just above");
            return (l1_lat + l2_lat, Some(self.l1.entry_at(pos)), dropped);
        }
        self.l2.stats.misses += 1;
        (l1_lat + l2_lat, None, None)
    }

    /// Installs a fresh translation (after a page walk); returns any entry
    /// pushed out of the hierarchy entirely. A stale copy of the same vpn
    /// in L2 is replaced, never duplicated.
    pub fn install(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        self.l2.invalidate(entry.vpn);
        if let Some(demoted) = self.l1.insert(entry) {
            return self.l2.insert(demoted);
        }
        None
    }

    /// Invalidates one translation everywhere, returning the L1-or-L2 copy.
    pub fn invalidate(&mut self, vpn: Vpn) -> Option<TlbEntry> {
        let a = self.l1.invalidate(vpn);
        let b = self.l2.invalidate(vpn);
        a.or(b)
    }

    /// Flushes everything, returning all entries (full TLB shootdown).
    pub fn flush_all(&mut self) -> Vec<TlbEntry> {
        let mut v = self.l1.flush_all();
        v.extend(self.l2.flush_all());
        v
    }

    /// Iterates all resident entries mutably, L1 first.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut TlbEntry> {
        self.l1.iter_mut().chain(self.l2.iter_mut())
    }

    /// Mutable access to a resident entry without touching LRU state or
    /// hit/miss counters (hardware-internal updates like access counting).
    pub fn peek_mut(&mut self, vpn: Vpn) -> Option<&mut TlbEntry> {
        if let Some(pos) = self.l1.pos_of(vpn) {
            return Some(self.l1.entry_at(pos));
        }
        if let Some(pos) = self.l2.pos_of(vpn) {
            return Some(self.l2.entry_at(pos));
        }
        None
    }

    /// (L1, L2) statistics.
    pub fn stats(&self) -> (TlbStats, TlbStats) {
        (self.l1.stats().clone(), self.l2.stats().clone())
    }

    /// Total resident translations.
    pub fn occupancy(&self) -> usize {
        self.l1.occupancy() + self.l2.occupancy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::{MemKind, Pfn};

    fn e(v: u64) -> TlbEntry {
        TlbEntry::new(Vpn::new(v), Pfn::new(v + 100), true, MemKind::Dram)
    }

    #[test]
    fn insert_lookup_invalidate() {
        let mut t = Tlb::new(TlbConfig { entries: 8, assoc: 2, hit_cycles: 1 });
        t.insert(e(1));
        assert!(t.lookup(Vpn::new(1)).is_some());
        assert!(t.lookup(Vpn::new(2)).is_none());
        assert_eq!(t.invalidate(Vpn::new(1)).unwrap().pfn, Pfn::new(101));
        assert!(t.peek(Vpn::new(1)).is_none());
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_in_set() {
        let mut t = Tlb::new(TlbConfig { entries: 4, assoc: 2, hit_cycles: 1 });
        // Set index = vpn & 1; vpns 0,2,4 share set 0.
        t.insert(e(0));
        t.insert(e(2));
        t.lookup(Vpn::new(0)); // 0 becomes MRU
        let ev = t.insert(e(4)).expect("set full");
        assert_eq!(ev.vpn, Vpn::new(2));
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn reinsert_updates_in_place() {
        let mut t = Tlb::new(TlbConfig { entries: 4, assoc: 2, hit_cycles: 1 });
        t.insert(e(1));
        let mut e2 = e(1);
        e2.pfn = Pfn::new(999);
        assert!(t.insert(e2).is_none());
        assert_eq!(t.peek(Vpn::new(1)).unwrap().pfn, Pfn::new(999));
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn two_level_promotes_from_l2() {
        let mut t = TwoLevelTlb::new(&TwoLevelTlbConfig::default());
        t.install(e(7));
        // Push entry 7 out of L1 by filling its set (L1: 16 sets, 4 ways;
        // vpns congruent to 7 mod 16 share the set).
        for i in 1..=4u64 {
            t.install(e(7 + i * 16));
        }
        // 7 must now be in L2; a lookup promotes it back to L1.
        let (lat, hit, _) = t.lookup(Vpn::new(7));
        assert!(hit.is_some());
        assert!(lat >= Cycles::new(8), "L2 hit pays both latencies: {lat}");
        let (lat2, hit2, _) = t.lookup(Vpn::new(7));
        assert!(hit2.is_some());
        assert_eq!(lat2, Cycles::new(1), "promoted entry hits in L1");
    }

    #[test]
    fn miss_costs_both_levels() {
        let mut t = TwoLevelTlb::new(&TwoLevelTlbConfig::default());
        let (lat, hit, _) = t.lookup(Vpn::new(42));
        assert!(hit.is_none());
        assert_eq!(lat, Cycles::new(1 + 7));
    }

    #[test]
    fn single_pass_lookup_charges_and_counts_like_before() {
        // Pins the observable contract of the one-pass lookup/touch path:
        // the same cycle charges and hit/miss counters the old
        // presence-check-then-rescan code produced, through a full
        // hit/miss cycle (L1 hit, L2 promote, cold miss, peek_mut).
        let mut t = TwoLevelTlb::new(&TwoLevelTlbConfig::default());
        t.install(e(7));
        let (lat, hit, _) = t.lookup(Vpn::new(7));
        assert!(hit.is_some());
        assert_eq!(lat, Cycles::new(1), "L1 hit pays the L1 latency only");
        let (lat, hit, _) = t.lookup(Vpn::new(42));
        assert!(hit.is_none());
        assert_eq!(lat, Cycles::new(1 + 7), "cold miss pays both levels");
        // Demote 7 to L2, then hit it there.
        for i in 1..=4u64 {
            t.install(e(7 + i * 16));
        }
        let (lat, hit, _) = t.lookup(Vpn::new(7));
        assert!(hit.is_some());
        assert_eq!(lat, Cycles::new(1 + 7), "L2 hit pays both levels");
        let (l1, l2) = t.stats();
        assert_eq!((l1.hits, l1.misses), (1, 2), "L1: one hit, two misses");
        assert_eq!((l2.hits, l2.misses), (1, 1), "L2: one promote-hit, one miss");
        // peek_mut finds entries at either level without touching counters.
        assert!(t.peek_mut(Vpn::new(7)).is_some(), "L1-resident after promote");
        assert!(t.peek_mut(Vpn::new(7 + 16)).is_some());
        assert!(t.peek_mut(Vpn::new(999)).is_none());
        let (l1_after, l2_after) = t.stats();
        assert_eq!((l1_after.hits, l1_after.misses), (l1.hits, l1.misses));
        assert_eq!((l2_after.hits, l2_after.misses), (l2.hits, l2.misses));
    }

    #[test]
    fn flush_all_returns_everything() {
        let mut t = TwoLevelTlb::new(&TwoLevelTlbConfig::default());
        for i in 0..10 {
            t.install(e(i));
        }
        let all = t.flush_all();
        assert_eq!(all.len(), 10);
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn eviction_cascade_returns_dropped_entry() {
        // Tiny stack: 2-entry direct-ish L1, 2-entry L2 forces drops fast.
        let cfg = TwoLevelTlbConfig {
            l1: TlbConfig { entries: 2, assoc: 2, hit_cycles: 1 },
            l2: TlbConfig { entries: 2, assoc: 2, hit_cycles: 7 },
        };
        let mut t = TwoLevelTlb::new(&cfg);
        let mut dropped = 0;
        for i in 0..16u64 {
            if t.install(e(i)).is_some() {
                dropped += 1;
            }
        }
        assert!(dropped > 0, "overflow must surface dropped entries");
        assert!(t.occupancy() <= 4);
    }
}
