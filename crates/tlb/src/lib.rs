//! TLB hierarchy and hardware page-table walker for the Kindle framework.
//!
//! The paper's prototypes both extend translation hardware:
//!
//! * **SSP** adds per-entry `updated`/`current` bitmaps and a shadow frame
//!   number to route sub-page (cache-line) writes to alternate physical
//!   pages ([`SspTlbExt`]).
//! * **HSCC** adds a per-entry access counter incremented on LLC misses and
//!   written back to the PTE on eviction or once per migration interval.
//!
//! Both extensions live in [`TlbEntry`]. The [`PageWalker`] performs real
//! 4-level walks by issuing loads through any [`kindle_types::PhysMem`], so
//! a page table hosted in NVM pays NVM latency on every walk — the effect
//! at the heart of the paper's *persistent vs. rebuild* comparison.
//!
//! # Examples
//!
//! ```
//! use kindle_tlb::{Tlb, TlbConfig, TlbEntry};
//! use kindle_types::{MemKind, Pfn, Vpn};
//!
//! let mut tlb = Tlb::new(TlbConfig::l1_default());
//! tlb.insert(TlbEntry::new(Vpn::new(5), Pfn::new(9), true, MemKind::Dram));
//! assert_eq!(tlb.lookup(Vpn::new(5)).unwrap().pfn, Pfn::new(9));
//! ```

pub mod entry;
pub mod msr;
pub mod tlb;
pub mod walker;

pub use entry::{SspTlbExt, TlbEntry};
pub use msr::MsrFile;
pub use tlb::{Tlb, TlbConfig, TlbStats, TwoLevelTlb, TwoLevelTlbConfig};
pub use walker::{pte_addr, PageWalker, WalkError, WalkOutcome};
