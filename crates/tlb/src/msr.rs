//! Model-specific registers used by the Kindle prototypes.
//!
//! The SSP prototype communicates the NVM virtual address range and the
//! physical base of the SSP metadata cache to the translation hardware via
//! MSRs; the HSCC prototype likewise publishes its lookup-table base.

use kindle_types::{PhysAddr, VirtAddr};

/// The machine's MSR file (only the Kindle-specific registers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MsrFile {
    /// Start of the virtual range mapped to NVM (SSP consistency applies
    /// only inside this range). `None` disables the SSP hardware path.
    pub nvm_range: Option<(VirtAddr, VirtAddr)>,
    /// Physical base address of the SSP metadata cache in NVM.
    pub ssp_cache_base: Option<PhysAddr>,
    /// Physical base address of the HSCC NVM-to-DRAM lookup table.
    pub hscc_table_base: Option<PhysAddr>,
}

impl MsrFile {
    /// Creates an MSR file with every feature disabled.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if `va` falls inside the published NVM range.
    pub fn in_nvm_range(&self, va: VirtAddr) -> bool {
        match self.nvm_range {
            Some((lo, hi)) => va >= lo && va < hi,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_check() {
        let mut msr = MsrFile::new();
        assert!(!msr.in_nvm_range(VirtAddr::new(0x5000)));
        msr.nvm_range = Some((VirtAddr::new(0x4000), VirtAddr::new(0x8000)));
        assert!(msr.in_nvm_range(VirtAddr::new(0x4000)));
        assert!(msr.in_nvm_range(VirtAddr::new(0x7fff)));
        assert!(!msr.in_nvm_range(VirtAddr::new(0x8000)));
        assert!(!msr.in_nvm_range(VirtAddr::new(0x3fff)));
    }
}
