//! TLB entries and the SSP/HSCC hardware extensions.

use kindle_types::{MemKind, Pfn, PhysAddr, Vpn};

/// SSP's per-entry extension: the supplementary physical page plus the
/// `updated`/`current` bitmaps, one bit per cache line of the page (64).
///
/// `current` says, per line, which of the two physical pages (original = 0,
/// shadow = 1) holds the latest *committed* data. `updated` marks the lines
/// written inside the current consistency interval — those writes were
/// routed to the non-current page and will be committed at interval end.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SspTlbExt {
    /// The shadow (supplementary) physical frame paired with the entry.
    pub shadow_pfn: Pfn,
    /// Lines written during the open consistency interval.
    pub updated: u64,
    /// Line-granularity committed-location bitmap.
    pub current: u64,
}

impl SspTlbExt {
    /// Physical frame a *write* to `line` must be routed to: the page that
    /// does **not** hold the committed data for that line.
    pub fn write_target(&self, orig: Pfn, line: usize) -> Pfn {
        if self.current >> line & 1 == 0 {
            self.shadow_pfn
        } else {
            orig
        }
    }

    /// Physical frame a *read* of `line` must be routed to: the committed
    /// page, unless the line was updated in this interval (then the new data
    /// lives on the write-target side).
    pub fn read_target(&self, orig: Pfn, line: usize) -> Pfn {
        let committed_is_shadow = self.current >> line & 1 == 1;
        let updated = self.updated >> line & 1 == 1;
        // updated flips the side relative to committed.
        if committed_is_shadow != updated {
            self.shadow_pfn
        } else {
            orig
        }
    }

    /// Commits the interval: lines written this interval flip their
    /// `current` side; `updated` clears.
    pub fn commit(&mut self) {
        self.current ^= self.updated;
        self.updated = 0;
    }
}

/// One translation with Kindle's hardware extensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TlbEntry {
    /// Virtual page number.
    pub vpn: Vpn,
    /// Mapped physical frame.
    pub pfn: Pfn,
    /// Whether writes are permitted.
    pub writable: bool,
    /// Backing technology of the frame.
    pub mem_kind: MemKind,
    /// Dirty bit mirrored from the PTE.
    pub dirty: bool,
    /// SSP extension fields, present only for NVM pages inside a FASE.
    pub ssp: Option<SspTlbExt>,
    /// HSCC per-page access count (incremented on LLC miss).
    pub access_count: u32,
    /// HSCC: whether the count was already propagated to the PTE during the
    /// current migration interval.
    pub count_written_this_interval: bool,
    /// Physical address of the leaf PTE this entry was filled from, so the
    /// prototypes can write counters/bits back without a fresh walk.
    pub pte_pa: PhysAddr,
}

impl TlbEntry {
    /// Creates a plain entry with no prototype extensions.
    pub fn new(vpn: Vpn, pfn: Pfn, writable: bool, mem_kind: MemKind) -> Self {
        TlbEntry {
            vpn,
            pfn,
            writable,
            mem_kind,
            dirty: false,
            ssp: None,
            access_count: 0,
            count_written_this_interval: false,
            pte_pa: PhysAddr::new(0),
        }
    }

    /// Records the leaf PTE location backing this entry.
    pub fn with_pte_pa(mut self, pa: PhysAddr) -> Self {
        self.pte_pa = pa;
        self
    }

    /// Attaches an SSP extension (shadow page with clean bitmaps).
    pub fn with_ssp(mut self, shadow_pfn: Pfn, current: u64) -> Self {
        self.ssp = Some(SspTlbExt { shadow_pfn, updated: 0, current });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssp_routing_round_trip() {
        let orig = Pfn::new(0x10);
        let shadow = Pfn::new(0x20);
        let mut ext = SspTlbExt { shadow_pfn: shadow, updated: 0, current: 0 };

        // Committed data on orig; a write to line 3 goes to shadow.
        assert_eq!(ext.write_target(orig, 3), shadow);
        ext.updated |= 1 << 3;
        // An uncommitted read of line 3 sees the new data on shadow.
        assert_eq!(ext.read_target(orig, 3), shadow);
        // An untouched line still reads from orig.
        assert_eq!(ext.read_target(orig, 4), orig);

        ext.commit();
        assert_eq!(ext.updated, 0);
        assert_eq!(ext.current, 1 << 3);
        // After commit, line 3's committed copy is the shadow; the next
        // write goes back to orig.
        assert_eq!(ext.read_target(orig, 3), shadow);
        assert_eq!(ext.write_target(orig, 3), orig);
    }

    #[test]
    fn ssp_double_write_same_interval_keeps_side() {
        let orig = Pfn::new(1);
        let shadow = Pfn::new(2);
        let mut ext = SspTlbExt { shadow_pfn: shadow, updated: 0, current: 0 };
        assert_eq!(ext.write_target(orig, 0), shadow);
        ext.updated |= 1;
        // Second write in the same interval must hit the same side.
        assert_eq!(ext.write_target(orig, 0), shadow);
        ext.updated |= 1;
        ext.commit();
        assert_eq!(ext.current & 1, 1);
    }

    #[test]
    fn entry_builder() {
        let e =
            TlbEntry::new(Vpn::new(1), Pfn::new(2), true, MemKind::Nvm).with_ssp(Pfn::new(3), 0);
        assert!(e.ssp.is_some());
        assert_eq!(e.ssp.unwrap().shadow_pfn, Pfn::new(3));
        assert_eq!(e.access_count, 0);
    }
}
