//! Hardware page-table walker.
//!
//! Walks the 4-level x86-64 page table by issuing real loads through a
//! [`PhysMem`], so every walk is charged the latency of wherever the tables
//! physically live (DRAM or NVM) — including cache hits on hot table lines.

use kindle_types::sanitize::{self, Event};
use kindle_types::{Pfn, PhysAddr, PhysMem, Pte, VirtAddr, CACHE_LINE};

pub use kindle_types::pte::pte_addr;

/// A successful walk: the leaf PTE and where it lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkOutcome {
    /// The leaf (level-1) entry.
    pub pte: Pte,
    /// Physical address of the leaf entry (so the walker or prototypes can
    /// write back accessed/dirty bits or HSCC counters).
    pub pte_pa: PhysAddr,
}

/// A failed walk: which level had the non-present entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkError {
    /// Level (4..=1) whose entry was not present.
    pub level: u8,
    /// Physical address of the non-present entry.
    pub pte_pa: PhysAddr,
}

/// The page-table walker. Stateless apart from statistics.
#[derive(Clone, Debug, Default)]
pub struct PageWalker {
    /// Completed walks.
    pub walks: u64,
    /// Walks that faulted (non-present entry).
    pub faults: u64,
    /// Total PTE loads issued.
    pub pte_loads: u64,
}

impl PageWalker {
    /// Creates a walker with zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Performs a 4-level walk from the root table `ptbr` for `va`.
    ///
    /// # Errors
    ///
    /// Returns [`WalkError`] naming the level whose entry was non-present;
    /// the OS turns this into a page fault.
    pub fn walk(
        &mut self,
        mem: &mut dyn PhysMem,
        ptbr: Pfn,
        va: VirtAddr,
    ) -> Result<WalkOutcome, WalkError> {
        self.walks += 1;
        let mut table = ptbr;
        for level in (2..=4u8).rev() {
            let (pa, pte) = self.load_entry(mem, table, va, level);
            if !pte.is_present() {
                self.faults += 1;
                return Err(WalkError { level, pte_pa: pa });
            }
            table = pte.pfn();
        }
        // Leaf level: the loop above narrowed `table` to the level-1 table.
        let (pa, pte) = self.load_entry(mem, table, va, 1);
        if !pte.is_present() {
            self.faults += 1;
            return Err(WalkError { level: 1, pte_pa: pa });
        }
        Ok(WalkOutcome { pte, pte_pa: pa })
    }

    /// Issues one charged PTE load at `level` of `table`.
    fn load_entry(
        &mut self,
        mem: &mut dyn PhysMem,
        table: Pfn,
        va: VirtAddr,
        level: u8,
    ) -> (PhysAddr, Pte) {
        let pa = pte_addr(table, va, level);
        self.pte_loads += 1;
        // The sanitizer cross-checks every consumed table line against
        // scrubd's uncorrected-corruption set.
        sanitize::emit(|| Event::PtLineRead { line: pa.as_u64() & !(CACHE_LINE as u64 - 1) });
        (pa, Pte::from_bits(mem.read_u64(pa)))
    }

    /// Walks and sets the accessed (and, for writes, dirty) bits in the leaf
    /// entry, charging the extra PTE store when bits change, as the hardware
    /// walker does.
    ///
    /// # Errors
    ///
    /// Propagates [`WalkError`] from [`PageWalker::walk`].
    pub fn walk_and_mark(
        &mut self,
        mem: &mut dyn PhysMem,
        ptbr: Pfn,
        va: VirtAddr,
        write: bool,
    ) -> Result<WalkOutcome, WalkError> {
        let out = self.walk(mem, ptbr, va)?;
        let mut bits = Pte::ACCESSED;
        if write {
            bits |= Pte::DIRTY;
        }
        let marked = out.pte.with_flags(bits);
        if marked != out.pte {
            mem.write_u64(out.pte_pa, marked.bits());
        }
        Ok(WalkOutcome { pte: marked, pte_pa: out.pte_pa })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kindle_types::physmem::FlatMem;
    use kindle_types::PAGE_SIZE;

    /// Hand-builds a 4-level mapping va -> leaf_pfn inside a FlatMem, using
    /// frames 1..=3 for the intermediate tables and `root` as frame 0.
    fn build_mapping(mem: &mut FlatMem, root: Pfn, va: VirtAddr, leaf: Pfn) {
        let mut table = root;
        for level in (2..=4u8).rev() {
            let next = Pfn::new(5 - level as u64); // frames 1,2,3
            let pa = pte_addr(table, va, level);
            let existing = Pte::from_bits(mem.read_u64(pa));
            let next = if existing.is_present() { existing.pfn() } else { next };
            mem.write_u64(pa, Pte::new(next, Pte::WRITABLE).bits());
            table = next;
        }
        let pa = pte_addr(table, va, 1);
        mem.write_u64(pa, Pte::new(leaf, Pte::WRITABLE).bits());
    }

    #[test]
    fn walk_finds_leaf() {
        let mut mem = FlatMem::new(64 * PAGE_SIZE);
        let root = Pfn::new(0);
        let va = VirtAddr::new(0x7f12_3456_7000);
        build_mapping(&mut mem, root, va, Pfn::new(42));
        let mut w = PageWalker::new();
        let out = w.walk(&mut mem, root, va).unwrap();
        assert_eq!(out.pte.pfn(), Pfn::new(42));
        assert_eq!(w.walks, 1);
        assert_eq!(w.pte_loads, 4);
    }

    #[test]
    fn walk_faults_on_missing_level() {
        let mut mem = FlatMem::new(64 * PAGE_SIZE);
        let mut w = PageWalker::new();
        let err = w.walk(&mut mem, Pfn::new(0), VirtAddr::new(0x1000)).unwrap_err();
        assert_eq!(err.level, 4);
        assert_eq!(w.faults, 1);
    }

    #[test]
    fn walk_and_mark_sets_bits_once() {
        let mut mem = FlatMem::new(64 * PAGE_SIZE);
        let root = Pfn::new(0);
        let va = VirtAddr::new(0x4000_0000);
        build_mapping(&mut mem, root, va, Pfn::new(9));
        let mut w = PageWalker::new();

        let out = w.walk_and_mark(&mut mem, root, va, true).unwrap();
        assert!(out.pte.is_accessed() && out.pte.is_dirty());
        // The stored PTE was updated.
        let stored = Pte::from_bits(mem.read_u64(out.pte_pa));
        assert!(stored.is_dirty());

        // Second identical walk must not rewrite the entry.
        let before = mem.now();
        let loads_before = w.pte_loads;
        w.walk_and_mark(&mut mem, root, va, true).unwrap();
        let elapsed = (mem.now() - before).as_u64();
        assert_eq!(w.pte_loads - loads_before, 4);
        assert_eq!(elapsed, 4, "4 loads, no store on second walk");
    }

    #[test]
    fn distinct_vas_share_tables_when_close() {
        let mut mem = FlatMem::new(64 * PAGE_SIZE);
        let root = Pfn::new(0);
        let a = VirtAddr::new(0x1000);
        let b = VirtAddr::new(0x2000);
        build_mapping(&mut mem, root, a, Pfn::new(50));
        build_mapping(&mut mem, root, b, Pfn::new(51));
        let mut w = PageWalker::new();
        assert_eq!(w.walk(&mut mem, root, a).unwrap().pte.pfn(), Pfn::new(50));
        assert_eq!(w.walk(&mut mem, root, b).unwrap().pte.pfn(), Pfn::new(51));
    }
}
