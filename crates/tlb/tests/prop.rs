//! Property tests — need a vendored `proptest`; enable with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests: TLB residency model and walker agreement.

use std::collections::HashMap;

use proptest::prelude::*;

use kindle_tlb::{pte_addr, PageWalker, Tlb, TlbConfig, TlbEntry, TwoLevelTlb, TwoLevelTlbConfig};
use kindle_types::physmem::FlatMem;
use kindle_types::{MemKind, Pfn, PhysMem, Pte, VirtAddr, Vpn, PAGE_SIZE};

proptest! {
    /// Occupancy never exceeds capacity; entries leave only by eviction or
    /// invalidation; an installed entry is immediately findable.
    #[test]
    fn tlb_residency_model(vpns in prop::collection::vec(0u64..64, 1..200)) {
        let mut t = Tlb::new(TlbConfig { entries: 16, assoc: 4, hit_cycles: 1 });
        let mut resident: HashMap<u64, u64> = HashMap::new(); // vpn -> pfn
        for (i, v) in vpns.iter().enumerate() {
            let e = TlbEntry::new(Vpn::new(*v), Pfn::new(1000 + i as u64), true, MemKind::Dram);
            if let Some(ev) = t.insert(e) {
                let removed = resident.remove(&ev.vpn.as_u64());
                prop_assert!(removed.is_some(), "evicted entry was not resident");
            }
            resident.insert(*v, 1000 + i as u64);
            prop_assert!(t.occupancy() <= 16);
            prop_assert_eq!(t.occupancy(), resident.len());
            prop_assert_eq!(
                t.peek(Vpn::new(*v)).map(|e| e.pfn.as_u64()),
                Some(1000 + i as u64)
            );
        }
        // Everything the model holds must be found.
        for (&v, &p) in &resident {
            prop_assert_eq!(t.lookup(Vpn::new(v)).map(|e| e.pfn.as_u64()), Some(p));
        }
    }

    /// The two-level stack never loses an entry silently: any install's
    /// return value accounts for the only way entries disappear (other
    /// than invalidate/flush).
    #[test]
    fn two_level_conservation(vpns in prop::collection::vec(0u64..4096, 1..300)) {
        let cfg = TwoLevelTlbConfig {
            l1: TlbConfig { entries: 8, assoc: 2, hit_cycles: 1 },
            l2: TlbConfig { entries: 32, assoc: 4, hit_cycles: 7 },
        };
        let mut t = TwoLevelTlb::new(&cfg);
        let mut resident: HashMap<u64, ()> = HashMap::new();
        for v in vpns {
            let e = TlbEntry::new(Vpn::new(v), Pfn::new(v + 7), true, MemKind::Nvm);
            if let Some(out) = t.install(e) {
                resident.remove(&out.vpn.as_u64());
            }
            resident.insert(v, ());
            prop_assert_eq!(t.occupancy(), resident.len());
        }
        // Lookups promote L2 hits into L1, which may cascade an entry out
        // of the hierarchy; any such drop must be reported, never silent.
        let keys: Vec<u64> = resident.keys().copied().collect();
        for v in keys {
            if !resident.contains_key(&v) {
                continue; // dropped by an earlier promotion cascade
            }
            let (_, hit, dropped) = t.lookup(Vpn::new(v));
            prop_assert!(hit.is_some(), "resident vpn {v} not found");
            if let Some(out) = dropped {
                let removed = resident.remove(&out.vpn.as_u64());
                prop_assert!(removed.is_some(), "dropped entry was not resident");
            }
            prop_assert_eq!(t.occupancy(), resident.len());
        }
    }

    /// The hardware walker agrees with a software model for arbitrary
    /// 4-level layouts built from random virtual pages.
    #[test]
    fn walker_matches_model(vpns in prop::collection::vec(0u64..(1u64 << 36), 1..24)) {
        let mut mem = FlatMem::new(512 * PAGE_SIZE);
        let root = Pfn::new(0);
        let mut next_table = 1u64;
        let mut model: HashMap<u64, Pfn> = HashMap::new();
        for (i, vpn) in vpns.iter().enumerate() {
            let va = VirtAddr::new(vpn << 12);
            let leaf = Pfn::new(0x4_0000 + i as u64);
            // Software build: walk levels 4..2, allocating tables.
            let mut table = root;
            for level in (2..=4u8).rev() {
                let pa = pte_addr(table, va, level);
                let pte = Pte::from_bits(mem.read_u64(pa));
                table = if pte.is_present() {
                    pte.pfn()
                } else {
                    let t = Pfn::new(next_table);
                    next_table += 1;
                    mem.write_u64(pa, Pte::new(t, Pte::WRITABLE).bits());
                    t
                };
            }
            mem.write_u64(pte_addr(table, va, 1), Pte::new(leaf, Pte::WRITABLE).bits());
            model.insert(*vpn, leaf);
        }
        let mut w = PageWalker::new();
        for (&vpn, &leaf) in &model {
            let out = w.walk(&mut mem, root, VirtAddr::new(vpn << 12)).unwrap();
            prop_assert_eq!(out.pte.pfn(), leaf, "vpn {:#x}", vpn);
        }
        // A vpn never inserted must fault (pick one outside the set).
        let missing = (1u64 << 36) + 1;
        prop_assert!(w.walk(&mut mem, root, VirtAddr::new(missing << 12)).is_err());
    }
}
