//! Three-level cache hierarchy (L1D → L2 → LLC).

use kindle_types::{AccessKind, Cycles, PhysAddr};

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Configuration of the three levels, defaulting to the paper's gem5 setup
/// (32 KiB L1, 512 KiB L2, 2 MiB LLC per core).
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified L2.
    pub l2: CacheConfig,
    /// Last-level cache.
    pub llc: CacheConfig,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig {
            l1: CacheConfig { name: "L1D".into(), size_bytes: 32 << 10, assoc: 8, hit_cycles: 4 },
            l2: CacheConfig { name: "L2".into(), size_bytes: 512 << 10, assoc: 8, hit_cycles: 12 },
            llc: CacheConfig { name: "LLC".into(), size_bytes: 2 << 20, assoc: 16, hit_cycles: 40 },
        }
    }
}

/// Outcome of one hierarchy access: latency of the cache portion plus the
/// memory traffic the caller must now charge to the devices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycles spent in the cache levels (memory latency not included).
    pub latency: Cycles,
    /// True if the access missed everywhere and a line fill from memory is
    /// required.
    pub needs_fill: bool,
    /// True if the access missed in the LLC (HSCC counts these per page).
    pub llc_miss: bool,
    /// Dirty lines evicted all the way out of the LLC; each must be written
    /// back to memory (and committed in the durability image).
    pub writebacks: Vec<PhysAddr>,
}

/// Per-level statistics snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HierarchyStats {
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// LLC counters.
    pub llc: CacheStats,
    /// Total lines written back to memory.
    pub memory_writebacks: u64,
}

/// The L1/L2/LLC stack. Mostly-inclusive: a line filled from memory is
/// installed at every level; evictions from an upper level write dirty data
/// into the level below.
#[derive(Clone, Debug)]
pub struct Hierarchy {
    l1: Cache,
    l2: Cache,
    llc: Cache,
    memory_writebacks: u64,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(cfg: &HierarchyConfig) -> Self {
        Hierarchy {
            l1: Cache::new(cfg.l1.clone()),
            l2: Cache::new(cfg.l2.clone()),
            llc: Cache::new(cfg.llc.clone()),
            memory_writebacks: 0,
        }
    }

    /// Performs one cache-line access.
    pub fn access(&mut self, pa: PhysAddr, kind: AccessKind) -> AccessResult {
        let mut latency = Cycles::new(self.l1.config().hit_cycles);
        let mut writebacks = Vec::new();

        if self.l1.lookup(pa, kind) {
            return AccessResult { latency, needs_fill: false, llc_miss: false, writebacks };
        }

        latency += Cycles::new(self.l2.config().hit_cycles);
        if self.l2.lookup(pa, kind) {
            self.fill_l1(pa, kind, &mut writebacks);
            self.count_wb(&writebacks);
            return AccessResult { latency, needs_fill: false, llc_miss: false, writebacks };
        }

        latency += Cycles::new(self.llc.config().hit_cycles);
        if self.llc.lookup(pa, kind) {
            self.fill_l2(pa, &mut writebacks);
            self.fill_l1(pa, kind, &mut writebacks);
            self.count_wb(&writebacks);
            return AccessResult { latency, needs_fill: false, llc_miss: true, writebacks };
        }

        // Full miss: fill every level from memory.
        if let Some(ev) = self.llc.insert(pa, false) {
            if ev.dirty {
                // Purge stale copies above so dirtiness is not resurrected.
                self.l1.invalidate_line(ev.line);
                self.l2.invalidate_line(ev.line);
                writebacks.push(ev.line);
            }
        }
        self.fill_l2(pa, &mut writebacks);
        self.fill_l1(pa, kind, &mut writebacks);
        self.count_wb(&writebacks);
        AccessResult { latency, needs_fill: true, llc_miss: true, writebacks }
    }

    /// Installs into L1; evicted dirty lines are pushed into L2 (which may in
    /// turn push into the LLC, which may write back to memory).
    fn fill_l1(&mut self, pa: PhysAddr, kind: AccessKind, wb: &mut Vec<PhysAddr>) {
        if let Some(ev) = self.l1.insert(pa, kind.is_write()) {
            if ev.dirty {
                self.spill_to_l2(ev.line, wb);
            }
        }
    }

    fn fill_l2(&mut self, pa: PhysAddr, wb: &mut Vec<PhysAddr>) {
        if let Some(ev) = self.l2.insert(pa, false) {
            if ev.dirty {
                self.spill_to_llc(ev.line, wb);
            }
        }
    }

    /// A dirty line leaving L1 lands in L2 (present or not).
    fn spill_to_l2(&mut self, line: PhysAddr, wb: &mut Vec<PhysAddr>) {
        if self.l2.probe(line) {
            self.l2.lookup(line, AccessKind::Write);
            return;
        }
        if let Some(ev) = self.l2.insert(line, true) {
            if ev.dirty {
                self.spill_to_llc(ev.line, wb);
            }
        }
    }

    fn spill_to_llc(&mut self, line: PhysAddr, wb: &mut Vec<PhysAddr>) {
        if self.llc.probe(line) {
            self.llc.lookup(line, AccessKind::Write);
            return;
        }
        if let Some(ev) = self.llc.insert(line, true) {
            if ev.dirty {
                self.l1.invalidate_line(ev.line);
                self.l2.invalidate_line(ev.line);
                wb.push(ev.line);
            }
        }
    }

    fn count_wb(&mut self, wb: &[PhysAddr]) {
        self.memory_writebacks += wb.len() as u64;
    }

    /// `clwb pa`: writes the line back at every level without invalidating.
    /// Returns `true` if any level held it dirty (a memory write-back is
    /// then required).
    pub fn clwb(&mut self, pa: PhysAddr) -> bool {
        let mut dirty = false;
        dirty |= self.l1.writeback_line(pa);
        dirty |= self.l2.writeback_line(pa);
        dirty |= self.llc.writeback_line(pa);
        if dirty {
            self.memory_writebacks += 1;
        }
        dirty
    }

    /// Invalidates one line everywhere; returns whether dirty data was
    /// dropped (callers that need it written back should `clwb` first).
    pub fn invalidate_line(&mut self, pa: PhysAddr) -> bool {
        let a = self.l1.invalidate_line(pa);
        let b = self.l2.invalidate_line(pa);
        let c = self.llc.invalidate_line(pa);
        a | b | c
    }

    /// Full write-back flush (e.g. `wbinvd` minus the invalidate): clears all
    /// dirty bits and returns every line that must be written to memory.
    pub fn writeback_all(&mut self) -> Vec<PhysAddr> {
        let mut lines = self.l1.writeback_all();
        lines.extend(self.l2.writeback_all());
        lines.extend(self.llc.writeback_all());
        lines.sort();
        lines.dedup();
        self.memory_writebacks += lines.len() as u64;
        lines
    }

    /// Power failure: every cached line (including dirty data) is lost.
    pub fn invalidate_all(&mut self) {
        self.l1.invalidate_all();
        self.l2.invalidate_all();
        self.llc.invalidate_all();
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1.stats().clone(),
            l2: self.l2.stats().clone(),
            llc: self.llc.stats().clone(),
            memory_writebacks: self.memory_writebacks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::new(&HierarchyConfig::default())
    }

    #[test]
    fn cold_miss_fills_all_levels() {
        let mut h = h();
        let pa = PhysAddr::new(0x4000);
        let r = h.access(pa, AccessKind::Read);
        assert!(r.needs_fill);
        assert!(r.llc_miss);
        let r2 = h.access(pa, AccessKind::Read);
        assert!(!r2.needs_fill);
        assert_eq!(r2.latency, Cycles::new(4));
    }

    #[test]
    fn latency_grows_with_depth() {
        let mut h = h();
        let pa = PhysAddr::new(0x8000);
        let miss = h.access(pa, AccessKind::Read);
        let hit = h.access(pa, AccessKind::Read);
        assert!(miss.latency > hit.latency);
        assert_eq!(miss.latency, Cycles::new(4 + 12 + 40));
    }

    #[test]
    fn clwb_reports_dirty_once() {
        let mut h = h();
        let pa = PhysAddr::new(0x1000);
        h.access(pa, AccessKind::Write);
        assert!(h.clwb(pa));
        assert!(!h.clwb(pa));
    }

    #[test]
    fn writeback_all_collects_dirty_lines() {
        let mut h = h();
        h.access(PhysAddr::new(0), AccessKind::Write);
        h.access(PhysAddr::new(64), AccessKind::Write);
        h.access(PhysAddr::new(128), AccessKind::Read);
        let wb = h.writeback_all();
        assert_eq!(wb, vec![PhysAddr::new(0), PhysAddr::new(64)]);
    }

    #[test]
    fn dirty_writeback_emerges_under_capacity_pressure() {
        // Write far more lines than the LLC holds; dirty evictions must
        // surface as memory writebacks.
        let mut h = h();
        let llc_lines = (2 << 20) / 64;
        let mut spilled = 0usize;
        for i in 0..(llc_lines as u64 * 2) {
            let r = h.access(PhysAddr::new(i * 64), AccessKind::Write);
            spilled += r.writebacks.len();
        }
        assert!(spilled > 0, "capacity pressure must force dirty writebacks");
        assert_eq!(h.stats().memory_writebacks, spilled as u64);
    }

    #[test]
    fn llc_miss_flag_tracks_llc_only() {
        let mut h = h();
        let pa = PhysAddr::new(0x2000);
        h.access(pa, AccessKind::Read);
        // Evict from L1 by filling its set; L1 is 32KiB/8-way => 64 sets,
        // stride for same set = 64 sets * 64B = 4096.
        for i in 1..=8u64 {
            h.access(PhysAddr::new(0x2000 + i * 4096), AccessKind::Read);
        }
        let r = h.access(pa, AccessKind::Read);
        assert!(!r.llc_miss, "line should still hit in L2/LLC");
    }

    #[test]
    fn invalidate_all_loses_dirty_data() {
        let mut h = h();
        h.access(PhysAddr::new(0x40), AccessKind::Write);
        h.invalidate_all();
        assert!(h.writeback_all().is_empty());
        let r = h.access(PhysAddr::new(0x40), AccessKind::Read);
        assert!(r.needs_fill, "post-crash access must miss");
    }
}
