//! A single set-associative, write-back cache with LRU replacement.

use kindle_types::{AccessKind, PhysAddr, CACHE_LINE_SHIFT};

/// Geometry and timing of one cache level.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheConfig {
    /// Human-readable level name ("L1D", "L2", "LLC").
    pub name: String,
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Latency of a hit at this level, in cycles.
    pub hit_cycles: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is not a power-of-two number of sets.
    pub fn sets(&self) -> usize {
        let lines = self.size_bytes / 64;
        let sets = lines / self.assoc;
        assert!(sets.is_power_of_two(), "cache sets must be a power of two");
        sets
    }
}

/// A line evicted to make room: its base address and whether it was dirty.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// Base physical address of the evicted line.
    pub line: PhysAddr,
    /// True if the line held modified data that must be written back.
    pub dirty: bool,
}

/// Hit/miss counters for one level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines evicted.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]`; 0 when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.misses as f64 / t as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// One cache level. Addresses are tracked at line granularity only (tags, no
/// data — the memory controller owns the byte image).
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// Every way of every set in one contiguous, set-major allocation: set
    /// `s` owns `ways[s * assoc .. (s + 1) * assoc]`. A flat array keeps
    /// construction, full-cache sweeps (flush/invalidate) and — above all —
    /// clones (machine snapshots fork thousands of machines per crash
    /// sweep) at memcpy speed instead of one heap allocation per set.
    ways: Vec<Way>,
    assoc: usize,
    set_mask: u64,
    tick: u64,
    /// Running count of valid ways, maintained on every fill/evict so
    /// [`occupancy`](Self::occupancy) is O(1) instead of a full-array
    /// recount (telemetry reads it per report, and the LLC has 98k ways).
    occupied: usize,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            ways: vec![Way::default(); sets * cfg.assoc],
            assoc: cfg.assoc,
            set_mask: sets as u64 - 1,
            cfg,
            tick: 0,
            occupied: 0,
            stats: CacheStats::default(),
        }
    }

    /// Level configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn index(&self, pa: PhysAddr) -> (usize, u64) {
        let line = pa.as_u64() >> CACHE_LINE_SHIFT;
        ((line & self.set_mask) as usize, line >> self.set_mask.count_ones())
    }

    /// Looks up `pa`; on hit updates LRU (and dirtiness for writes) and
    /// returns `true`. Counts the access in the stats.
    pub fn lookup(&mut self, pa: PhysAddr, kind: AccessKind) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(pa);
        let base = set * self.assoc;
        for way in &mut self.ways[base..base + self.assoc] {
            if way.valid && way.tag == tag {
                way.stamp = tick;
                if kind.is_write() {
                    way.dirty = true;
                }
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Inserts the line containing `pa` (after a miss), evicting the LRU way
    /// if the set is full. `dirty` marks the inserted line as modified.
    pub fn insert(&mut self, pa: PhysAddr, dirty: bool) -> Option<Eviction> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.index(pa);
        let set_bits = self.set_mask.count_ones();
        let base = set * self.assoc;
        let ways = &mut self.ways[base..base + self.assoc];
        // Reuse an invalid way if present.
        if let Some(way) = ways.iter_mut().find(|w| !w.valid) {
            *way = Way { tag, valid: true, dirty, stamp: tick };
            self.occupied += 1;
            return None;
        }
        let victim = ways.iter_mut().min_by_key(|w| w.stamp).expect("associativity >= 1");
        let evicted_line = ((victim.tag << set_bits) | set as u64) << CACHE_LINE_SHIFT;
        let ev = Eviction { line: PhysAddr::new(evicted_line), dirty: victim.dirty };
        if ev.dirty {
            self.stats.dirty_evictions += 1;
        }
        *victim = Way { tag, valid: true, dirty, stamp: tick };
        Some(ev)
    }

    /// True if the line is present (does not update LRU or stats).
    pub fn probe(&self, pa: PhysAddr) -> bool {
        let (set, tag) = self.index(pa);
        let base = set * self.assoc;
        self.ways[base..base + self.assoc].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Clears the dirty bit of the line if present; returns whether it was
    /// dirty (i.e. a write-back is needed). The line stays valid (`clwb`).
    pub fn writeback_line(&mut self, pa: PhysAddr) -> bool {
        let (set, tag) = self.index(pa);
        let base = set * self.assoc;
        for way in &mut self.ways[base..base + self.assoc] {
            if way.valid && way.tag == tag {
                let was = way.dirty;
                way.dirty = false;
                return was;
            }
        }
        false
    }

    /// Invalidates the line if present; returns whether it was dirty.
    pub fn invalidate_line(&mut self, pa: PhysAddr) -> bool {
        let (set, tag) = self.index(pa);
        let base = set * self.assoc;
        for way in &mut self.ways[base..base + self.assoc] {
            if way.valid && way.tag == tag {
                way.valid = false;
                self.occupied -= 1;
                return way.dirty;
            }
        }
        false
    }

    /// Clears all dirty bits, returning the base addresses of lines that
    /// were dirty (a full write-back flush).
    pub fn writeback_all(&mut self) -> Vec<PhysAddr> {
        let set_bits = self.set_mask.count_ones();
        let assoc = self.assoc;
        let mut out = Vec::new();
        for (set, ways) in self.ways.chunks_mut(assoc).enumerate() {
            for way in ways.iter_mut() {
                if way.valid && way.dirty {
                    way.dirty = false;
                    let line = ((way.tag << set_bits) | set as u64) << CACHE_LINE_SHIFT;
                    out.push(PhysAddr::new(line));
                }
            }
        }
        out
    }

    /// Drops every line (power loss). Dirty data is *lost*, which is exactly
    /// the hazard NVM consistency mechanisms guard against.
    pub fn invalidate_all(&mut self) {
        for way in &mut self.ways {
            way.valid = false;
            way.dirty = false;
        }
        self.occupied = 0;
    }

    /// Number of valid lines currently held (a maintained counter, not a
    /// recount; [`recount_occupancy`](Self::recount_occupancy) is the
    /// oracle the tests hold it against).
    pub fn occupancy(&self) -> usize {
        self.occupied
    }

    /// Recounts valid ways from scratch. Test oracle for the maintained
    /// [`occupancy`](Self::occupancy) counter.
    #[doc(hidden)]
    pub fn recount_occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            name: "T".into(),
            size_bytes: 4 * 64, // 4 lines
            assoc: 2,           // 2 sets x 2 ways
            hit_cycles: 1,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        let pa = PhysAddr::new(0x1000);
        assert!(!c.lookup(pa, AccessKind::Read));
        c.insert(pa, false);
        assert!(c.lookup(pa, AccessKind::Read));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = 2 lines = 128B).
        let a = PhysAddr::new(0);
        let b = PhysAddr::new(128);
        let d = PhysAddr::new(256);
        c.insert(a, false);
        c.insert(b, false);
        c.lookup(a, AccessKind::Read); // a is now MRU
        let ev = c.insert(d, false).expect("set full");
        assert_eq!(ev.line, b, "LRU way (b) must be evicted");
        assert!(c.probe(a));
        assert!(!c.probe(b));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = tiny();
        let a = PhysAddr::new(0);
        c.insert(a, false);
        c.lookup(a, AccessKind::Write); // dirty it
        c.insert(PhysAddr::new(128), false);
        let ev = c.insert(PhysAddr::new(256), false).unwrap();
        assert_eq!(ev.line, a);
        assert!(ev.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn writeback_line_clears_dirty_keeps_valid() {
        let mut c = tiny();
        let a = PhysAddr::new(64);
        c.insert(a, true);
        assert!(c.writeback_line(a));
        assert!(!c.writeback_line(a), "second writeback is a no-op");
        assert!(c.probe(a), "clwb keeps the line cached");
    }

    #[test]
    fn invalidate_line_reports_dirty() {
        let mut c = tiny();
        let a = PhysAddr::new(64);
        c.insert(a, true);
        assert!(c.invalidate_line(a));
        assert!(!c.probe(a));
        assert!(!c.invalidate_line(a));
    }

    #[test]
    fn writeback_all_returns_exactly_dirty_lines() {
        let mut c = tiny();
        c.insert(PhysAddr::new(0), true);
        c.insert(PhysAddr::new(64), false);
        c.insert(PhysAddr::new(128), true);
        let mut dirty = c.writeback_all();
        dirty.sort();
        assert_eq!(dirty, vec![PhysAddr::new(0), PhysAddr::new(128)]);
        assert!(c.writeback_all().is_empty());
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn eviction_reconstructs_correct_address() {
        let mut c = Cache::new(CacheConfig {
            name: "T2".into(),
            size_bytes: 64 * 64,
            assoc: 1,
            hit_cycles: 1,
        });
        let pa = PhysAddr::new(0xabcd * 64);
        c.insert(pa, true);
        // Same set, different tag: set count = 64 lines, stride 64*64 bytes.
        let conflicting = PhysAddr::new(pa.as_u64() + 64 * 64 * 64);
        let ev = c.insert(conflicting, false).unwrap();
        assert_eq!(ev.line, pa);
    }

    #[test]
    fn occupancy_counter_matches_recount_through_mixed_workload() {
        let mut c = tiny();
        assert_eq!(c.occupancy(), 0);
        // Deterministic mixed fill/evict/invalidate traffic: addresses
        // collide across both sets, so inserts exercise both the
        // invalid-way-reuse branch (+1) and the replace branch (+0).
        let mut state = 0x9e37_79b9_u64;
        for step in 0..200u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pa = PhysAddr::new((state >> 33) % 8 * 64);
            match step % 5 {
                0 | 1 => {
                    if !c.lookup(pa, AccessKind::Read) {
                        c.insert(pa, step % 2 == 0);
                    }
                }
                2 => {
                    c.insert(pa, false);
                }
                3 => {
                    c.invalidate_line(pa);
                }
                _ => {
                    c.writeback_line(pa);
                }
            }
            assert_eq!(
                c.occupancy(),
                c.recount_occupancy(),
                "counter drifted from recount at step {step}"
            );
        }
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.occupancy(), c.recount_occupancy());
        c.insert(PhysAddr::new(0), true);
        assert_eq!(c.occupancy(), 1);
        assert_eq!(c.occupancy(), c.recount_occupancy());
    }

    #[test]
    fn invalidate_all_drops_everything() {
        let mut c = tiny();
        c.insert(PhysAddr::new(0), true);
        c.insert(PhysAddr::new(64), true);
        c.invalidate_all();
        assert_eq!(c.occupancy(), 0);
        assert!(c.writeback_all().is_empty(), "dirty data lost on power failure");
    }
}
