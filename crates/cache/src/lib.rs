//! Cache hierarchy for the Kindle framework.
//!
//! Models the paper's gem5 cache configuration: 32 KiB L1, 512 KiB L2 and a
//! 2 MiB LLC, all set-associative, write-back, write-allocate with LRU
//! replacement. The hierarchy is decoupled from the memory controller: an
//! access returns which memory traffic (line fill, dirty write-backs) the
//! caller must charge to the memory devices, so the `sim` crate can route
//! that traffic to DRAM or NVM and keep the durability image consistent.
//!
//! Persistence-relevant operations (`clwb`, full flushes, crash
//! invalidation) are first-class: SSP and the checkpoint engines use them to
//! force data and metadata back to NVM.
//!
//! # Examples
//!
//! ```
//! use kindle_cache::{Hierarchy, HierarchyConfig};
//! use kindle_types::{AccessKind, PhysAddr};
//!
//! let mut h = Hierarchy::new(&HierarchyConfig::default());
//! let first = h.access(PhysAddr::new(0x1000), AccessKind::Read);
//! assert!(first.needs_fill); // cold miss goes to memory
//! let second = h.access(PhysAddr::new(0x1000), AccessKind::Read);
//! assert!(!second.needs_fill); // now cached
//! assert!(second.latency < first.latency);
//! ```

pub mod cache;
pub mod hierarchy;

pub use cache::{Cache, CacheConfig, CacheStats, Eviction};
pub use hierarchy::{AccessResult, Hierarchy, HierarchyConfig, HierarchyStats};
