//! Property tests — need a vendored `proptest`; enable with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests: the cache hierarchy against reference models.

use std::collections::HashSet;

use proptest::prelude::*;

use kindle_cache::{Cache, CacheConfig, Hierarchy, HierarchyConfig};
use kindle_types::{AccessKind, PhysAddr};

fn tiny_cache() -> Cache {
    Cache::new(CacheConfig { name: "T".into(), size_bytes: 8 * 64, assoc: 2, hit_cycles: 1 })
}

proptest! {
    /// Occupancy never exceeds capacity, and a line reported evicted was
    /// genuinely resident before.
    #[test]
    fn cache_capacity_and_eviction_sound(lines in prop::collection::vec(0u64..64, 1..200)) {
        let mut c = tiny_cache();
        let mut resident: HashSet<u64> = HashSet::new();
        for l in lines {
            let pa = PhysAddr::new(l * 64);
            if !c.lookup(pa, AccessKind::Read) {
                if let Some(ev) = c.insert(pa, false) {
                    let e = ev.line.as_u64() / 64;
                    prop_assert!(resident.remove(&e), "evicted non-resident line {e}");
                }
                resident.insert(l);
            }
            prop_assert!(c.occupancy() <= 8);
            prop_assert_eq!(c.occupancy(), resident.len());
            // Every line the model says is resident must probe true.
            for &r in &resident {
                prop_assert!(c.probe(PhysAddr::new(r * 64)), "lost line {r}");
            }
        }
    }

    /// After writeback_all, no dirty lines remain anywhere, and the set of
    /// written-back lines equals the set of written-but-not-evicted lines.
    #[test]
    fn writeback_all_is_complete(ops in prop::collection::vec((0u64..64, any::<bool>()), 1..150)) {
        let mut c = tiny_cache();
        let mut dirty: HashSet<u64> = HashSet::new();
        for (l, write) in ops {
            let pa = PhysAddr::new(l * 64);
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            if !c.lookup(pa, kind) {
                if let Some(ev) = c.insert(pa, write) {
                    dirty.remove(&(ev.line.as_u64() / 64));
                } else if write {
                    // lookup() on a miss does not set dirty; insert did.
                }
            }
            if write {
                dirty.insert(l);
            }
        }
        let mut wb: Vec<u64> = c.writeback_all().iter().map(|p| p.as_u64() / 64).collect();
        wb.sort_unstable();
        let mut expect: Vec<u64> = dirty.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(wb, expect);
        prop_assert!(c.writeback_all().is_empty(), "second flush must be empty");
    }

    /// Hierarchy: a line is always found after being accessed (until enough
    /// conflicting traffic), and repeated accesses never report fills.
    #[test]
    fn hierarchy_rehit_after_access(addr in 0u64..(1 << 24)) {
        let mut h = Hierarchy::new(&HierarchyConfig::default());
        let pa = PhysAddr::new(addr).line_base();
        h.access(pa, AccessKind::Read);
        let again = h.access(pa, AccessKind::Read);
        prop_assert!(!again.needs_fill);
        prop_assert!(!again.llc_miss);
    }

    /// Dirty data is never silently lost: every dirty line either leaves
    /// via an eviction writeback or is still flushable at the end.
    #[test]
    fn hierarchy_conserves_dirty_lines(lines in prop::collection::vec(0u64..40_000, 1..400)) {
        let mut h = Hierarchy::new(&HierarchyConfig::default());
        let mut written: HashSet<u64> = HashSet::new();
        let mut written_back: HashSet<u64> = HashSet::new();
        for l in lines {
            let pa = PhysAddr::new(l * 64);
            let res = h.access(pa, AccessKind::Write);
            written.insert(l);
            for wb in res.writebacks {
                written_back.insert(wb.as_u64() / 64);
            }
        }
        for pa in h.writeback_all() {
            written_back.insert(pa.as_u64() / 64);
        }
        prop_assert_eq!(
            &written - &written_back,
            HashSet::new(),
            "some dirty lines vanished"
        );
    }
}
