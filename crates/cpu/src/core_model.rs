//! The in-order core: clock and labelled time accounting.

use kindle_types::Cycles;

use crate::regs::RegisterFile;

/// What the machine is currently doing; each charged cycle is attributed to
/// exactly one activity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[repr(usize)]
pub enum Activity {
    /// Application (user-mode) execution, including its memory stalls.
    User = 0,
    /// Generic kernel work (fault handling, syscalls, allocation).
    Os = 1,
    /// Periodic execution-context checkpointing (persistence study).
    Checkpoint = 2,
    /// NVM-consistency wrapping of page-table stores (persistent scheme).
    PtConsistency = 3,
    /// SSP interval-end processing (bitmap write-out, clwb storm).
    SspInterval = 4,
    /// SSP background page consolidation thread.
    Consolidation = 5,
    /// HSCC software page-table scan for candidate selection.
    MigrationScan = 6,
    /// HSCC destination-page selection (free/clean/dirty lists, copy-back).
    MigrationSelection = 7,
    /// HSCC NVM→DRAM page copy (flush + copy + remap).
    MigrationCopy = 8,
    /// Crash recovery (rebuilding contexts and page tables).
    Recovery = 9,
}

impl Activity {
    /// All activities in index order.
    pub const ALL: [Activity; 10] = [
        Activity::User,
        Activity::Os,
        Activity::Checkpoint,
        Activity::PtConsistency,
        Activity::SspInterval,
        Activity::Consolidation,
        Activity::MigrationScan,
        Activity::MigrationSelection,
        Activity::MigrationCopy,
        Activity::Recovery,
    ];

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Activity::User => "user",
            Activity::Os => "os",
            Activity::Checkpoint => "checkpoint",
            Activity::PtConsistency => "pt-consistency",
            Activity::SspInterval => "ssp-interval",
            Activity::Consolidation => "ssp-consolidation",
            Activity::MigrationScan => "migration-scan",
            Activity::MigrationSelection => "migration-selection",
            Activity::MigrationCopy => "migration-copy",
            Activity::Recovery => "recovery",
        }
    }
}

/// Cycles charged per [`Activity`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ActivityBreakdown {
    buckets: [Cycles; Activity::ALL.len()],
}

impl ActivityBreakdown {
    /// Cycles attributed to `a`.
    pub fn get(&self, a: Activity) -> Cycles {
        self.buckets[a as usize]
    }

    /// Sum over every activity (= total busy time).
    pub fn total(&self) -> Cycles {
        self.buckets.iter().copied().sum()
    }

    /// Sum of all non-user buckets.
    pub fn non_user(&self) -> Cycles {
        self.total() - self.get(Activity::User)
    }

    /// Iterates `(activity, cycles)` pairs with non-zero time.
    pub fn iter(&self) -> impl Iterator<Item = (Activity, Cycles)> + '_ {
        Activity::ALL.iter().copied().map(|a| (a, self.get(a))).filter(|(_, c)| *c > Cycles::ZERO)
    }
}

/// Counters beyond raw time.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CpuStats {
    /// Retired instructions (charged via [`Core::instr`]).
    pub instructions: u64,
    /// Memory operations issued.
    pub mem_ops: u64,
}

/// The simulated in-order core at 3 GHz. Owns the one global clock.
#[derive(Clone, Debug, Default)]
pub struct Core {
    now: Cycles,
    activity: Option<Activity>,
    breakdown: ActivityBreakdown,
    /// Architectural registers (saved/restored by persistence).
    pub regs: RegisterFile,
    stats: CpuStats,
}

impl Core {
    /// A core at time zero, executing user code.
    pub fn new() -> Self {
        Core { activity: Some(Activity::User), ..Default::default() }
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Currently active attribution label.
    pub fn activity(&self) -> Activity {
        self.activity.unwrap_or(Activity::User)
    }

    /// Switches the attribution label, returning the previous one so callers
    /// can restore it (`let prev = core.set_activity(..); ...;
    /// core.set_activity(prev);`).
    pub fn set_activity(&mut self, a: Activity) -> Activity {
        let prev = self.activity();
        self.activity = Some(a);
        prev
    }

    /// Advances the clock, attributing the time to the current activity.
    pub fn advance(&mut self, cost: Cycles) {
        self.now += cost;
        self.breakdown.buckets[self.activity() as usize] += cost;
    }

    /// Charges `count` single-cycle instructions (CPI = 1 in-order model).
    pub fn instr(&mut self, count: u64) {
        self.stats.instructions += count;
        self.advance(Cycles::new(count));
    }

    /// Counts one memory operation (time is charged separately by the
    /// memory path).
    pub fn count_mem_op(&mut self) {
        self.stats.mem_ops += 1;
    }

    /// Time-attribution breakdown.
    pub fn breakdown(&self) -> &ActivityBreakdown {
        &self.breakdown
    }

    /// Instruction/memory-op counters.
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// Resets clock and accounting but keeps the register file (used when
    /// re-running a machine from a recovered state).
    pub fn reset_accounting(&mut self) {
        self.now = Cycles::ZERO;
        self.breakdown = ActivityBreakdown::default();
        self.stats = CpuStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_follows_activity() {
        let mut c = Core::new();
        c.advance(Cycles::new(10));
        let prev = c.set_activity(Activity::Checkpoint);
        assert_eq!(prev, Activity::User);
        c.advance(Cycles::new(5));
        c.set_activity(prev);
        c.advance(Cycles::new(1));
        assert_eq!(c.breakdown().get(Activity::User).as_u64(), 11);
        assert_eq!(c.breakdown().get(Activity::Checkpoint).as_u64(), 5);
        assert_eq!(c.now().as_u64(), 16);
        assert_eq!(c.breakdown().total().as_u64(), 16);
        assert_eq!(c.breakdown().non_user().as_u64(), 5);
    }

    #[test]
    fn instr_charges_cpi_one() {
        let mut c = Core::new();
        c.instr(100);
        assert_eq!(c.now().as_u64(), 100);
        assert_eq!(c.stats().instructions, 100);
    }

    #[test]
    fn iter_skips_zero_buckets() {
        let mut c = Core::new();
        c.set_activity(Activity::MigrationCopy);
        c.advance(Cycles::new(3));
        let v: Vec<_> = c.breakdown().iter().collect();
        assert_eq!(v, vec![(Activity::MigrationCopy, Cycles::new(3))]);
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<_> = Activity::ALL.iter().map(|a| a.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), Activity::ALL.len());
    }

    #[test]
    fn reset_accounting_keeps_registers() {
        let mut c = Core::new();
        c.regs.rip = 77;
        c.advance(Cycles::new(9));
        c.reset_accounting();
        assert_eq!(c.now(), Cycles::ZERO);
        assert_eq!(c.regs.rip, 77);
    }
}
