//! The architectural register file saved/restored by process persistence.

/// Number of general-purpose registers (x86-64).
pub const GPR_COUNT: usize = 16;

/// CPU state that must be part of a process's saved execution context.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RegisterFile {
    /// General-purpose registers rax..r15.
    pub gpr: [u64; GPR_COUNT],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register.
    pub rflags: u64,
}

impl RegisterFile {
    /// Fresh register file (all zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Serialized size in bytes when checkpointed (`gpr + rip + rflags`).
    pub const BYTES: usize = (GPR_COUNT + 2) * 8;

    /// Encodes into a fixed-size little-endian byte array.
    pub fn to_bytes(&self) -> [u8; Self::BYTES] {
        let mut out = [0u8; Self::BYTES];
        for (i, r) in self.gpr.iter().enumerate() {
            out[i * 8..(i + 1) * 8].copy_from_slice(&r.to_le_bytes());
        }
        out[GPR_COUNT * 8..GPR_COUNT * 8 + 8].copy_from_slice(&self.rip.to_le_bytes());
        out[(GPR_COUNT + 1) * 8..].copy_from_slice(&self.rflags.to_le_bytes());
        out
    }

    /// Decodes from the layout produced by [`RegisterFile::to_bytes`].
    pub fn from_bytes(bytes: &[u8; Self::BYTES]) -> Self {
        let mut rf = RegisterFile::default();
        for i in 0..GPR_COUNT {
            rf.gpr[i] = u64::from_le_bytes(bytes[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        }
        rf.rip = u64::from_le_bytes(
            bytes[GPR_COUNT * 8..GPR_COUNT * 8 + 8].try_into().expect("8 bytes"),
        );
        rf.rflags = u64::from_le_bytes(bytes[(GPR_COUNT + 1) * 8..].try_into().expect("8 bytes"));
        rf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        let mut rf = RegisterFile::new();
        for (i, r) in rf.gpr.iter_mut().enumerate() {
            *r = 0x1111_0000 + i as u64;
        }
        rf.rip = 0xdead_beef;
        rf.rflags = 0x246;
        let bytes = rf.to_bytes();
        assert_eq!(RegisterFile::from_bytes(&bytes), rf);
    }

    #[test]
    fn size_is_18_words() {
        assert_eq!(RegisterFile::BYTES, 144);
    }
}
