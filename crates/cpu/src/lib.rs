//! The simulated CPU core: clock, register file and activity accounting.
//!
//! Kindle's experiments hinge on *attributing* simulated time: Figure 6 and
//! Table VI split execution into user time, OS migration page-selection and
//! page-copy time; the persistence study splits out checkpoint time. The
//! [`Core`] owns the global cycle counter and a per-[`Activity`] breakdown;
//! every component charges time through it under the currently active label.
//!
//! # Examples
//!
//! ```
//! use kindle_cpu::{Activity, Core};
//! use kindle_types::Cycles;
//!
//! let mut core = Core::new();
//! core.advance(Cycles::new(100)); // user by default
//! let prev = core.set_activity(Activity::MigrationCopy);
//! core.advance(Cycles::new(50));
//! core.set_activity(prev);
//! assert_eq!(core.breakdown().get(Activity::User).as_u64(), 100);
//! assert_eq!(core.breakdown().get(Activity::MigrationCopy).as_u64(), 50);
//! ```

pub mod core_model;
pub mod regs;

pub use core_model::{Activity, ActivityBreakdown, Core, CpuStats};
pub use regs::RegisterFile;
