//! Criterion bench over the Fig. 4 page-table-scheme experiments at CI
//! scale (the paper-scale tables come from the `fig4a`/`fig4b` binaries).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kindle_core::experiments::{run_fig4a, run_fig4b, Fig4aParams, Fig4bParams};
use kindle_core::types::Cycles;

fn tiny_fig4a() -> Fig4aParams {
    Fig4aParams {
        sizes_mb: vec![4],
        interval: Cycles::from_millis(1),
        read_rounds: 1,
        ..Fig4aParams::quick()
    }
}

fn tiny_fig4b() -> Fig4bParams {
    Fig4bParams {
        pages: 10,
        access_ops: 100_000,
        interval: Cycles::from_millis(1),
        list_op_instr: 2600,
    }
}

fn bench(c: &mut Criterion) {
    c.bench_function("fig4a_cell_4mib", |b| {
        b.iter(|| black_box(run_fig4a(&tiny_fig4a()).unwrap()))
    });
    c.bench_function("fig4b_strides_100k_ops", |b| {
        b.iter(|| black_box(run_fig4b(&tiny_fig4b()).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
