//! Criterion bench over the HSCC (Fig. 6) pipeline at CI scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kindle_bench::*;
use kindle_core::prelude::*;

fn bench(c: &mut Criterion) {
    let kindle = Kindle::prepare_streaming(WorkloadKind::GapbsPr, 40_000, 42);
    for (label, os_mode) in [("fig6_hw_only_40k_ops", false), ("fig6_with_os_40k_ops", true)] {
        c.bench_function(label, |b| {
            b.iter(|| {
                let cfg = MachineConfig::table_i()
                    .with_hscc(HsccConfig { fetch_threshold: 5, ..Default::default() }, os_mode);
                black_box(kindle.simulate(cfg, ReplayOptions::default()).unwrap().0.cycles)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
