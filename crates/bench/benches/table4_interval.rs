//! Criterion bench over the Table IV interval sweep at CI scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kindle_core::experiments::{run_table4, Table4Params};
use kindle_core::types::Cycles;

fn tiny() -> Table4Params {
    Table4Params {
        base_mb: 16,
        churn_mb: vec![4],
        intervals: vec![Cycles::from_millis(1), Cycles::from_millis(10)],
        access_rounds: 1,
        list_op_instr: 2600,
    }
}

fn bench(c: &mut Criterion) {
    c.bench_function("table4_sweep_16mib", |b| b.iter(|| black_box(run_table4(&tiny()).unwrap())));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
