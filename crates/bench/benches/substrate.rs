//! Host-performance benchmarks of the simulation substrates: how fast the
//! simulator itself runs (simulated work per host second).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kindle_bench::*;
use kindle_core::cache::{Hierarchy, HierarchyConfig};
use kindle_core::mem::{MemConfig, MemoryController};
use kindle_core::tlb::{TlbEntry, TwoLevelTlb, TwoLevelTlbConfig};
use kindle_core::types::{AccessKind, Cycles, MemKind, Pfn, PhysAddr, Vpn, PAGE_SIZE};

fn bench_cache(c: &mut Criterion) {
    let mut h = Hierarchy::new(&HierarchyConfig::default());
    let mut i = 0u64;
    c.bench_function("cache_hierarchy_access", |b| {
        b.iter(|| {
            i = (i + 1) % 100_000;
            black_box(h.access(PhysAddr::new(i * 64), AccessKind::Read))
        })
    });
}

fn bench_mc(c: &mut Criterion) {
    let cfg = MemConfig::default();
    let nvm = cfg.layout.range(MemKind::Nvm).base;
    let mut m = MemoryController::new(&cfg);
    let mut i = 0u64;
    c.bench_function("nvm_device_access", |b| {
        b.iter(|| {
            i += 1;
            black_box(m.access(nvm + (i % 4096) * 64, AccessKind::Write, Cycles::new(i * 100)))
        })
    });
}

fn bench_tlb(c: &mut Criterion) {
    let mut t = TwoLevelTlb::new(&TwoLevelTlbConfig::default());
    for v in 0..1024u64 {
        t.install(TlbEntry::new(Vpn::new(v), Pfn::new(v), true, MemKind::Dram));
    }
    let mut i = 0u64;
    c.bench_function("tlb_two_level_lookup", |b| {
        b.iter(|| {
            i = (i + 1) % 2048;
            let (lat, hit, _) = t.lookup(Vpn::new(i));
            black_box((lat, hit.is_some()))
        })
    });
}

fn bench_machine_correct(c: &mut Criterion) {
    let mut m = Machine::new(MachineConfig::small()).unwrap();
    let pid = m.spawn_process().unwrap();
    let va = m.mmap(pid, 4 << 20, Prot::RW, MapFlags::NVM).unwrap();
    for i in 0..1024u64 {
        m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write).unwrap();
    }
    let mut i = 0u64;
    c.bench_function("machine_replay_op", |b| {
        b.iter(|| {
            i += 1;
            black_box(m.access(pid, va + (i % 1024) * PAGE_SIZE as u64, AccessKind::Read).unwrap())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_cache, bench_mc, bench_tlb, bench_machine_correct
}
criterion_main!(benches);
