//! Criterion bench over the SSP (Fig. 5) pipeline at CI scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use kindle_bench::*;
use kindle_core::prelude::*;

fn bench(c: &mut Criterion) {
    let kindle = Kindle::prepare_streaming(WorkloadKind::YcsbMem, 40_000, 42);
    c.bench_function("fig5_baseline_40k_ops", |b| {
        b.iter(|| {
            black_box(
                kindle
                    .simulate(MachineConfig::table_i(), ReplayOptions::default())
                    .unwrap()
                    .0
                    .cycles,
            )
        })
    });
    c.bench_function("fig5_ssp_5ms_40k_ops", |b| {
        b.iter(|| {
            let cfg = MachineConfig::table_i().with_ssp(SspConfig::default());
            black_box(
                kindle.simulate(cfg, ReplayOptions { fase: true, max_ops: None }).unwrap().0.cycles,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
