//! Prints the machine configuration — the paper's Table I.
//!
//! The far-tier row comes from the selected backend's trait accessors
//! (`--backend`, default PCM), never from raw `NvmConfig` fields — the
//! KD013 lint keeps latency/endurance fields inside the backend layer.

use kindle_bench::*;
use kindle_core::mem::MemoryBackend;

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let cfg = MachineConfig::table_i();
    let far = harness.backend().instance();
    println!("TABLE I: gem5-analog Memory Configuration");
    rule(52);
    println!("{:<28} {}", "Parameter", "Used Setting");
    rule(52);
    println!("{:<28} DDR4-2400 ({} banks)", "DRAM interface", cfg.mem.dram.banks);
    println!(
        "{:<28} {} ({} ns rd / {} ns wr)",
        "NVM interface",
        far.label(),
        far.read_latency_ns(),
        far.write_latency_ns()
    );
    println!("{:<28} {}", "NVM Write buffer size", far.write_buffer_entries());
    println!("{:<28} {}", "NVM Read buffer size", far.read_buffer_entries());
    println!(
        "{:<28} {} GB DRAM + {} GB NVM",
        "Memory capacity",
        cfg.mem.layout.total(MemKind::Dram) >> 30,
        cfg.mem.layout.total(MemKind::Nvm) >> 30
    );
    println!(
        "{:<28} {} KiB L1 / {} KiB L2 / {} MiB LLC",
        "Caches",
        cfg.caches.l1.size_bytes >> 10,
        cfg.caches.l2.size_bytes >> 10,
        cfg.caches.llc.size_bytes >> 20
    );
    println!("{:<28} 3 GHz in-order x86-64", "CPU");
    harness.maybe_json_body(&config_json(&cfg, far));
    harness.finish()
}

/// Renders the Table I configuration as a JSON object. Table I has no
/// experiment rows, so this is hand-written rather than going through
/// `experiments::to_json`; the harness wraps it in the bench envelope.
fn config_json(cfg: &MachineConfig, far: &dyn MemoryBackend) -> String {
    format!(
        "{{\n  \"dram_banks\": {},\n  \"nvm_read_ns\": {},\n  \"nvm_write_service_ns\": {},\n  \
         \"nvm_write_buffer\": {},\n  \"nvm_read_buffer\": {},\n  \"dram_gb\": {},\n  \
         \"nvm_gb\": {},\n  \"l1_kib\": {},\n  \"l2_kib\": {},\n  \"llc_mib\": {},\n  \
         \"cpu_freq_ghz\": {}\n}}\n",
        cfg.mem.dram.banks,
        far.read_latency_ns(),
        far.write_latency_ns(),
        far.write_buffer_entries(),
        far.read_buffer_entries(),
        cfg.mem.layout.total(MemKind::Dram) >> 30,
        cfg.mem.layout.total(MemKind::Nvm) >> 30,
        cfg.caches.l1.size_bytes >> 10,
        cfg.caches.l2.size_bytes >> 10,
        cfg.caches.llc.size_bytes >> 20,
        types::CPU_FREQ_GHZ
    )
}
