//! Backends × schemes sweep: the Fig. 4a persistence grid rerun under
//! each headline far-tier backend (`pcm`, `numa`, `sttram`, `cxl`).
//!
//! With `--json`, emits one golden-pinned row per backend as flat
//! fields keyed by registry name (`pcm_rebuild_ms`, ...) so the CI
//! bench-smoke job's `bench_diff` ranges gate each backend
//! independently.

use kindle_bench::*;
use kindle_core::experiments::{run_backend_grid, BackendGridParams};

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let p = if quick_mode() { BackendGridParams::quick() } else { BackendGridParams::paper() };
    println!("BACKENDS x SCHEMES: Fig. 4a persistence grid per far-tier backend");
    rule(76);
    println!(
        "{:<18} | {:>8} | {:>12} | {:>14} | {:>9}",
        "backend", "size MiB", "rebuild ms", "persistent ms", "reb/pers"
    );
    rule(76);
    let grid = run_backend_grid(&p)?;
    for (b, rows) in &grid {
        for r in rows {
            println!(
                "{:<18} | {:>8} | {:>12} | {:>14} | {:>8.2}x",
                b.instance().label(),
                r.size_mb,
                ms(r.rebuild_ms),
                ms(r.persistent_ms),
                r.overhead()
            );
        }
    }
    println!();
    println!("takeaway: swapping the far tier moves the persistence trade-off —");
    println!("DRAM-class backends (numa, cxl) shrink the write-path tax that makes");
    println!("the persistent scheme attractive on PCM.");

    let mut body = String::from("{");
    for (i, (b, rows)) in grid.iter().enumerate() {
        let Some(r) = rows.first() else { continue };
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "\n  \"{0}_rebuild_ms\": {1:.3},\n  \"{0}_persistent_ms\": {2:.3}",
            b.name(),
            r.rebuild_ms,
            r.persistent_ms
        ));
    }
    body.push_str("\n}\n");
    harness.maybe_json_body(&body);
    harness.finish()
}
