//! CI tier-2 sweep benchmark: runs the exhaustive write-granular crash
//! sweep (`FaultPoint::NvmWrite` at stride 1) serially and on the resolved
//! fork-join worker count, proves the two produce bit-identical outcomes,
//! and records the measured speedup in the bench JSON envelope
//! (`BENCH_sweep.json` in CI, diffed against golden ranges).
//!
//! This binary replaced the old `--ignored` exhaustive tests: the parallel
//! executor makes the full sweep cheap enough to run on every push, and
//! running serial-vs-parallel here doubles as the executor's end-to-end
//! determinism check on a real workload.

use kindle_bench::*;
use kindle_core::os::PtMode;
use kindle_faults::{run_nvm_write_sweep_jobs, run_stuck_sweep_jobs};

/// Fixed sweep seed (same one the crash-sweep acceptance tests pin).
const SEED: u64 = 0x00c0_ffee_4b1d_0001;

/// Stuck cells seeded for the degraded-media sweep regime.
const STUCK_CELLS: usize = 4096;

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let stride = if quick_mode() { 64 } else { 1 };
    let jobs = harness.jobs();
    println!("SWEEP: write-granular crash sweep, stride {stride}, serial vs {jobs} workers");
    rule(78);
    println!(
        "{:<10} | {:>6} | {:>9} | {:>9} | {:>9} | {:>7}",
        "mode", "points", "recovered", "serial ms", "par ms", "speedup"
    );
    rule(78);
    let mut body = String::from("[");
    for (i, (label, mode)) in
        [("rebuild", PtMode::Rebuild), ("persistent", PtMode::Persistent)].into_iter().enumerate()
    {
        let t0 = std::time::Instant::now();
        let serial = run_nvm_write_sweep_jobs(mode, SEED, stride, 1)?;
        let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = std::time::Instant::now();
        let threaded = run_nvm_write_sweep_jobs(mode, SEED, stride, jobs)?;
        let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
        assert_eq!(serial, threaded, "jobs=1 vs jobs={jobs} must agree bit-for-bit");
        let speedup = serial_ms / parallel_ms.max(1e-9);
        println!(
            "{:<10} | {:>6} | {:>9} | {:>9} | {:>9} | {:>6.2}x",
            label,
            serial.boundaries,
            serial.recovered,
            ms(serial_ms),
            ms(parallel_ms),
            speedup
        );
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "\n  {{\"mode\": \"{label}\", \"points\": {}, \"recovered\": {}, \
             \"digest\": \"{:#018x}\", \"serial_ms\": {serial_ms:.1}, \
             \"parallel_ms\": {parallel_ms:.1}, \"speedup\": {speedup:.3}}}",
            serial.boundaries, serial.recovered, serial.digest
        ));
    }
    // The degraded-media regime: the persistent-mode boundary sweep with
    // thousands of stuck cells, the two-entry ECP budget and scrubd armed.
    // Distinct JSON field names keep its (much smaller) point counts out
    // of the write-sweep golden ranges above.
    let t0 = std::time::Instant::now();
    let serial = run_stuck_sweep_jobs(PtMode::Persistent, SEED, STUCK_CELLS, 1)?;
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = std::time::Instant::now();
    let threaded = run_stuck_sweep_jobs(PtMode::Persistent, SEED, STUCK_CELLS, jobs)?;
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(serial, threaded, "stuck sweep: jobs=1 vs jobs={jobs} must agree bit-for-bit");
    println!(
        "{:<10} | {:>6} | {:>9} | {:>9} | {:>9} | {:>7}",
        "stuck",
        serial.boundaries,
        serial.recovered,
        ms(serial_ms),
        ms(parallel_ms),
        format!("{STUCK_CELLS} cells")
    );
    body.push_str(&format!(
        ",\n  {{\"mode\": \"stuck-persistent\", \"stuck_cells\": {STUCK_CELLS}, \
         \"stuck_points\": {}, \"stuck_recovered\": {}, \"digest\": \"{:#018x}\", \
         \"serial_ms\": {serial_ms:.1}, \"parallel_ms\": {parallel_ms:.1}}}",
        serial.boundaries, serial.recovered, serial.digest
    ));
    body.push_str("\n]");
    harness.maybe_json_body(&body);
    rule(78);
    println!("digest equality verified: parallel sweeps are byte-identical to serial.");
    harness.finish()
}
