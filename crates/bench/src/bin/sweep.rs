//! CI tier-2 sweep benchmark: runs the exhaustive write-granular crash
//! sweep (`FaultPoint::NvmWrite` at stride 1) on the snapshot-fork tier —
//! serially and on the resolved fork-join worker count, proving the two
//! produce bit-identical outcomes — then times the replay-from-zero oracle
//! on the same points and records the measured `snapshot_speedup` in the
//! bench JSON envelope (`BENCH_sweep.json` in CI, diffed against golden
//! ranges so the O(n) fork tier can never silently regress to O(n²)).
//!
//! The replay run doubles as the cross-check: its outcome must be
//! byte-identical to the forked one. `--verify-replay` extends that
//! cross-check to every sweep family — boundary (both page-table modes),
//! threaded, stuck-cell and data-integrity — and `--timing <path>` writes
//! the `SWEEP_timing.json` telemetry artifact (per-family boundary counts,
//! snapshot-pool high-water mark, speedup) the CI sweep job uploads.

use kindle_bench::*;
use kindle_core::os::PtMode;
use kindle_faults::{
    run_data_integrity_sweep_strategy, run_nvm_write_sweep_instrumented, run_stuck_sweep_jobs,
    run_stuck_sweep_strategy, run_sweep_strategy, SweepStrategy, SweepTelemetry,
};

/// Fixed sweep seed (same one the crash-sweep acceptance tests pin).
const SEED: u64 = 0x00c0_ffee_4b1d_0001;

/// Stuck cells seeded for the degraded-media sweep regime.
const STUCK_CELLS: usize = 4096;

/// Times one closure in wall-clock milliseconds.
fn timed<T>(f: impl FnOnce() -> Result<T>) -> Result<(T, f64)> {
    let t0 = std::time::Instant::now();
    let v = f()?;
    Ok((v, t0.elapsed().as_secs_f64() * 1e3))
}

/// Cross-checks the snapshot-forked execution of every sweep family
/// against the replay-from-zero oracle (`--verify-replay`).
fn verify_all_families(jobs: usize, stride: u64) -> Result<()> {
    println!("VERIFY: snapshot-forked digests vs replay-from-zero, all families");
    rule(78);
    for (family, forked, replayed) in [
        (
            "boundary/rebuild",
            run_sweep_strategy(PtMode::Rebuild, SEED, false, jobs, SweepStrategy::SnapshotFork)?,
            run_sweep_strategy(PtMode::Rebuild, SEED, false, jobs, SweepStrategy::ReplayFromZero)?,
        ),
        (
            "boundary/persistent",
            run_sweep_strategy(PtMode::Persistent, SEED, false, jobs, SweepStrategy::SnapshotFork)?,
            run_sweep_strategy(
                PtMode::Persistent,
                SEED,
                false,
                jobs,
                SweepStrategy::ReplayFromZero,
            )?,
        ),
        (
            "threaded",
            run_sweep_strategy(PtMode::Rebuild, SEED, true, jobs, SweepStrategy::SnapshotFork)?,
            run_sweep_strategy(PtMode::Rebuild, SEED, true, jobs, SweepStrategy::ReplayFromZero)?,
        ),
        (
            "stuck",
            run_stuck_sweep_strategy(
                PtMode::Persistent,
                SEED,
                STUCK_CELLS,
                jobs,
                SweepStrategy::SnapshotFork,
            )?,
            run_stuck_sweep_strategy(
                PtMode::Persistent,
                SEED,
                STUCK_CELLS,
                jobs,
                SweepStrategy::ReplayFromZero,
            )?,
        ),
    ] {
        assert_eq!(forked, replayed, "{family}: forked sweep diverged from replay-from-zero");
        println!("{family:<22} {} points  digest {:#018x}  ok", forked.boundaries, forked.digest);
    }
    // The write-granular family is verified at a coarse stride here; the
    // bench loop below cross-checks the full stride-1 enumeration of both
    // page-table modes anyway, so repeating it inside `--verify-replay`
    // would only double the oracle's O(n²) bill.
    let stride = stride.max(16);
    let forked = run_nvm_write_sweep_instrumented(
        PtMode::Rebuild,
        SEED,
        stride,
        jobs,
        SweepStrategy::SnapshotFork,
    )?
    .0;
    let replayed = run_nvm_write_sweep_instrumented(
        PtMode::Rebuild,
        SEED,
        stride,
        jobs,
        SweepStrategy::ReplayFromZero,
    )?
    .0;
    assert_eq!(forked, replayed, "nvm-write: forked sweep diverged from replay-from-zero");
    println!(
        "{:<22} {} points  digest {:#018x}  ok",
        "nvm-write", forked.boundaries, forked.digest
    );
    let forked = run_data_integrity_sweep_strategy(SEED, 6, jobs, SweepStrategy::SnapshotFork)?;
    let replayed = run_data_integrity_sweep_strategy(SEED, 6, jobs, SweepStrategy::ReplayFromZero)?;
    assert_eq!(forked, replayed, "data-integrity: round-tripped sweep diverged from straight run");
    println!(
        "{:<22} {} points  digest {:#018x}  ok",
        "data-integrity", forked.points, forked.digest
    );
    rule(78);
    Ok(())
}

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let stride = if quick_mode() { 64 } else { 1 };
    let jobs = harness.jobs();
    if harness.verify_replay() {
        verify_all_families(jobs, stride)?;
    }
    println!("SWEEP: write-granular crash sweep, stride {stride}, serial vs {jobs} workers");
    rule(78);
    println!(
        "{:<10} | {:>6} | {:>9} | {:>9} | {:>9} | {:>9} | {:>7}",
        "mode", "points", "recovered", "serial ms", "par ms", "replay ms", "snap spd"
    );
    rule(78);
    let mut body = String::from("[");
    let mut timing = String::from("[");
    for (i, (label, mode)) in
        [("rebuild", PtMode::Rebuild), ("persistent", PtMode::Persistent)].into_iter().enumerate()
    {
        let ((serial, telemetry), serial_ms) = timed(|| {
            run_nvm_write_sweep_instrumented(mode, SEED, stride, 1, SweepStrategy::SnapshotFork)
        })?;
        let (parallel, parallel_ms) = timed(|| {
            Ok(run_nvm_write_sweep_instrumented(
                mode,
                SEED,
                stride,
                jobs,
                SweepStrategy::SnapshotFork,
            )?
            .0)
        })?;
        assert_eq!(serial, parallel, "jobs=1 vs jobs={jobs} must agree bit-for-bit");
        // The replay-from-zero oracle on the same points: its wall clock is
        // what the fork tier is measured against, and its outcome must be
        // byte-identical.
        let (replayed, replay_ms) = timed(|| {
            Ok(run_nvm_write_sweep_instrumented(
                mode,
                SEED,
                stride,
                jobs,
                SweepStrategy::ReplayFromZero,
            )?
            .0)
        })?;
        assert_eq!(serial, replayed, "forked sweep diverged from replay-from-zero");
        let speedup = serial_ms / parallel_ms.max(1e-9);
        let snapshot_speedup = replay_ms / parallel_ms.max(1e-9);
        println!(
            "{:<10} | {:>6} | {:>9} | {:>9} | {:>9} | {:>9} | {:>6.2}x",
            label,
            serial.boundaries,
            serial.recovered,
            ms(serial_ms),
            ms(parallel_ms),
            ms(replay_ms),
            snapshot_speedup
        );
        if i > 0 {
            body.push(',');
            timing.push(',');
        }
        body.push_str(&format!(
            "\n  {{\"mode\": \"{label}\", \"points\": {}, \"recovered\": {}, \
             \"digest\": \"{:#018x}\", \"serial_ms\": {serial_ms:.1}, \
             \"parallel_ms\": {parallel_ms:.1}, \"speedup\": {speedup:.3}, \
             \"replay_ms\": {replay_ms:.1}, \"snapshot_speedup\": {snapshot_speedup:.3}}}",
            serial.boundaries, serial.recovered, serial.digest
        ));
        timing.push_str(&timing_row(label, &telemetry, snapshot_speedup));
    }
    // The degraded-media regime: the persistent-mode boundary sweep with
    // thousands of stuck cells, the two-entry ECP budget and scrubd armed.
    // Distinct JSON field names keep its (much smaller) point counts out
    // of the write-sweep golden ranges above.
    let ((serial, stuck_telemetry), serial_ms) = timed(|| {
        let out = run_stuck_sweep_strategy(
            PtMode::Persistent,
            SEED,
            STUCK_CELLS,
            1,
            SweepStrategy::SnapshotFork,
        )?;
        // The boundary sweep reuses the nvm-write golden machinery, so its
        // telemetry comes from a second (cheap) recorded golden run.
        Ok((out, SweepTelemetry::default()))
    })?;
    let (parallel, parallel_ms) =
        timed(|| run_stuck_sweep_jobs(PtMode::Persistent, SEED, STUCK_CELLS, jobs))?;
    assert_eq!(serial, parallel, "stuck sweep: jobs=1 vs jobs={jobs} must agree bit-for-bit");
    println!(
        "{:<10} | {:>6} | {:>9} | {:>9} | {:>9} | {:>9} | {:>7}",
        "stuck",
        serial.boundaries,
        serial.recovered,
        ms(serial_ms),
        ms(parallel_ms),
        "-",
        format!("{STUCK_CELLS} cells")
    );
    body.push_str(&format!(
        ",\n  {{\"mode\": \"stuck-persistent\", \"stuck_cells\": {STUCK_CELLS}, \
         \"stuck_points\": {}, \"stuck_recovered\": {}, \"digest\": \"{:#018x}\", \
         \"serial_ms\": {serial_ms:.1}, \"parallel_ms\": {parallel_ms:.1}}}",
        serial.boundaries, serial.recovered, serial.digest
    ));
    let _ = stuck_telemetry;
    body.push_str("\n]");
    timing.push_str("\n]");
    harness.maybe_json_body(&body);
    if let Some(path) = harness.timing_path() {
        let data = format!(
            "{{\n\"jobs\": {jobs},\n\"stride\": {stride},\n\"verified_replay\": {},\n\"rows\": {timing}\n}}\n",
            harness.verify_replay()
        );
        match std::fs::write(path, data) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("timing write failed: {e}"),
        }
    }
    rule(78);
    println!("digest equality verified: forked sweeps are byte-identical to replay.");
    harness.finish()
}

/// One `SWEEP_timing.json` row: the family's golden enumeration sizes, the
/// snapshot pool's retention behaviour and the measured fork-tier speedup.
fn timing_row(family: &str, t: &SweepTelemetry, snapshot_speedup: f64) -> String {
    format!(
        "\n  {{\"family\": \"{family}\", \"boundaries\": {}, \"nvm_writes\": {}, \
         \"snapshots_offered\": {}, \"snapshots_retained\": {}, \"pool_high_water\": {}, \
         \"pool_capacity\": {}, \"pool_stride\": {}, \"snapshot_speedup\": {snapshot_speedup:.3}}}",
        t.boundaries,
        t.nvm_writes,
        t.snapshots_offered,
        t.snapshots_retained,
        t.pool_high_water,
        t.pool_capacity,
        t.pool_stride,
    )
}
