//! Ablation: NVM write-buffer depth — sensitivity of the persistent
//! page-table scheme (and checkpoint bursts) to burst absorption.

use kindle_bench::*;
use kindle_core::os::PtMode;
use kindle_core::types::PAGE_SIZE;

fn depth_cell(depth: usize) -> Result<(f64, u64)> {
    let mut cfg = MachineConfig::table_i()
        .with_pt_mode(PtMode::Persistent)
        .with_checkpointing(Cycles::from_millis(10));
    cfg.mem.nvm.write_buffer = depth;
    // Keep demand-zeroing on: each fault's 64-line burst is exactly
    // the traffic the write buffer exists to absorb.
    let mut m = Machine::new(cfg)?;
    let pid = m.spawn_process()?;
    let t0 = m.now();
    let base = 256u64 << 20;
    let churn = 64u64 << 20;
    let va = m.mmap(pid, base, Prot::RW, MapFlags::NVM)?;
    for i in 0..base / PAGE_SIZE as u64 {
        m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write)?;
    }
    for _ in 0..2 {
        m.munmap(pid, va, churn)?;
        m.mmap_at(pid, Some(va), churn, Prot::RW, MapFlags::NVM | MapFlags::FIXED)?;
        for i in 0..churn / PAGE_SIZE as u64 {
            m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write)?;
        }
    }
    let elapsed = (m.now() - t0).as_millis_f64();
    let stalls = m.report().mem.nvm.write_stalls;
    Ok((elapsed, stalls))
}

fn main() -> Result<()> {
    let harness = Harness::from_args();
    println!("ABLATION: NVM write-buffer depth (persistent scheme, 64 MiB churn)");
    rule(46);
    println!("{:>6} | {:>12} | {:>12}", "depth", "exec ms", "write stalls");
    rule(46);
    let cells = parallel::par_map_cells(vec![8usize, 16, 48, 128, 512], |depth| {
        depth_cell(depth).map(|(elapsed, stalls)| (depth, elapsed, stalls))
    })?;
    for (depth, elapsed, stalls) in cells {
        println!("{:>6} | {:>12} | {:>12}", depth, ms(elapsed), stalls);
    }
    rule(46);
    println!("Table I's 48 entries sit past the knee: deeper buffers stop helping");
    println!("once bursts fit, because sustained drain bandwidth is the binding limit.");
    harness.finish()
}
