//! Hot-path throughput: flat direct-indexed controller stores vs the
//! legacy ordered maps.
//!
//! Drives the identical workload through `Machine::access` on two
//! machines that differ only in `MemConfig::legacy_maps`: the flat side
//! uses the pfn-indexed page arena, the `LineTable`-backed checksum
//! store and the epoch-tagged undo table; the legacy side uses the
//! original `BTreeMap` stores. Two alternating phases cover both halves
//! of the controller's hot path:
//!
//! * a *translation* phase — a random read/write mix over a working set
//!   sized well past the TLB, so most accesses walk the NVM-resident
//!   page tables (Persistent mode) through the controller's byte loads;
//! * a *churn* phase — mmap/fault-in/munmap rounds whose zero-fill
//!   stores hit the undo table and (with the media-fault model armed)
//!   the checksum table on every line.
//!
//! Timing methodology: both sides run the identical access stream, split
//! into chunks that are timed *alternately* (legacy, flat, legacy, flat,
//! …) after an untimed warm-up chunk, so frequency scaling and cache
//! warm-up bias neither side.
//!
//! Reported rows:
//!
//! * `mlines_per_sec` — flat-side throughput in million simulated line
//!   accesses per host second;
//! * `hotpath_speedup` — legacy wall time / flat wall time (golden-gated
//!   at >= 1.3x by `bench_diff`);
//! * `lines_accessed` — per-side timed line count (workload-shape pin).
//!
//! Both sides must be *observation-equivalent*: the binary asserts their
//! `SimReport`s and final clocks are byte-identical before printing any
//! number, so the speedup can never come from simulating less.

use kindle_bench::*;
use kindle_core::prelude::PtMode;

/// Deterministic splitmix64 step: the workload's address/kind stream.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One side of the comparison: a machine plus its private copy of the
/// workload stream and its accumulated timed work.
struct Side {
    m: Machine,
    pid: u32,
    va: VirtAddr,
    pages: u64,
    rng: u64,
    lines: u64,
    secs: f64,
}

impl Side {
    /// Builds one side; `legacy` picks the store layout. The ambient
    /// `--legacy-maps` request is suspended around `Machine::new` so a
    /// global flag cannot leak into the flat side — the comparison is
    /// meaningless unless exactly one side is legacy.
    fn build(legacy: bool, pages: u64) -> Result<Side> {
        let ambient = sim::thread_legacy_maps();
        sim::set_thread_legacy_maps(false);
        let mut faults = mem::MediaFaultConfig::with_seed(5);
        faults.correction_entries = STUCK_CORRECTION_ENTRIES;
        let mut cfg = MachineConfig::small().with_pt_mode(PtMode::Persistent);
        cfg.mem.faults = Some(faults);
        cfg.mem.legacy_maps = legacy;
        // Keep the fixed-cost part of the per-access simulation (way
        // scans) small and the translation traffic high: a lean TLB means
        // nearly every access walks the NVM-resident page tables, which
        // is exactly the controller-store traffic this bench compares.
        cfg.tlb.l1 = tlb::TlbConfig { entries: 16, assoc: 4, hit_cycles: 1 };
        cfg.tlb.l2 = tlb::TlbConfig { entries: 128, assoc: 8, hit_cycles: 7 };
        cfg.caches.l1.assoc = 2;
        cfg.caches.l2.assoc = 2;
        cfg.caches.llc.assoc = 4;
        let built = Machine::new(cfg);
        sim::set_thread_legacy_maps(ambient);
        let mut m = built?;

        let pid = m.spawn_process()?;
        let va = m.mmap(pid, pages * 4096, Prot::RW, MapFlags::NVM)?;
        // Fault every page in up front so the timed region is
        // steady-state translation + data traffic, not fault handling.
        for p in 0..pages {
            m.access(pid, va + p * 4096, AccessKind::Write)?;
        }
        Ok(Side { m, pid, va, pages, rng: 0x0dd0_11ce_5eed, lines: 0, secs: 0.0 })
    }

    /// Runs `n` accesses of the deterministic stream; `timed` adds the
    /// wall time and line count to the side's totals.
    fn chunk(&mut self, n: u64, timed: bool) -> Result<()> {
        let started = std::time::Instant::now();
        for _ in 0..n {
            let r = mix(&mut self.rng);
            let page = (r >> 32) % self.pages;
            let line = (r >> 16) & 63;
            let kind = if r & 3 == 0 { AccessKind::Read } else { AccessKind::Write };
            self.m.access(self.pid, self.va + page * 4096 + line * 64, kind)?;
        }
        if timed {
            self.secs += started.elapsed().as_secs_f64();
            self.lines += n;
        }
        Ok(())
    }

    /// One mmap/fault-in/munmap churn round over a scratch region: every
    /// faulted frame is zero-filled line by line through the controller's
    /// byte store, so this is the store-side (undo + checksum) hot path.
    fn churn(&mut self, scratch_pages: u64, timed: bool) -> Result<()> {
        let started = std::time::Instant::now();
        let va = self.m.mmap(self.pid, scratch_pages * 4096, Prot::RW, MapFlags::NVM)?;
        for p in 0..scratch_pages {
            self.m.access(self.pid, va + p * 4096, AccessKind::Write)?;
        }
        self.m.munmap(self.pid, va, scratch_pages * 4096)?;
        if timed {
            self.secs += started.elapsed().as_secs_f64();
            self.lines += scratch_pages;
        }
        Ok(())
    }
}

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let (pages, chunks) = if quick_mode() { (4096, 6) } else { (8192, 16) };
    let chunk = pages;

    let mut flat = Side::build(false, pages)?;
    let mut legacy = Side::build(true, pages)?;

    // Untimed warm-up, then alternate timed chunks so host-side noise
    // (frequency scaling, cache warm-up) biases neither side.
    flat.chunk(chunk, false)?;
    legacy.chunk(chunk, false)?;
    for _ in 0..chunks {
        legacy.chunk(chunk, true)?;
        flat.chunk(chunk, true)?;
        legacy.churn(512, true)?;
        flat.churn(512, true)?;
    }

    // Observation equivalence first: a throughput win that changes any
    // counter is a simulation bug, not an optimisation.
    assert_eq!(flat.m.now(), legacy.m.now(), "flat and legacy clocks diverged");
    let (fr, lr) = (format!("{:?}", flat.m.report()), format!("{:?}", legacy.m.report()));
    assert_eq!(fr, lr, "flat and legacy reports diverged");
    assert_eq!(flat.lines, legacy.lines);

    let mlines_per_sec = flat.lines as f64 / flat.secs / 1e6;
    let hotpath_speedup = legacy.secs / flat.secs;

    println!("HOTPATH: steady-state controller-store throughput");
    rule(56);
    println!("{:<28} {:>12}", "Metric", "Value");
    rule(56);
    println!("{:<28} {:>12}", "pages", pages);
    println!("{:<28} {:>12}", "lines accessed", flat.lines);
    println!("{:<28} {:>12.2}", "flat Mlines/s", mlines_per_sec);
    println!("{:<28} {:>12.2}", "legacy Mlines/s", legacy.lines as f64 / legacy.secs / 1e6);
    println!("{:<28} {:>12.2}", "speedup (legacy/flat)", hotpath_speedup);
    println!("reports: byte-identical");

    harness.maybe_json_body(&format!(
        "{{\n  \"mlines_per_sec\": {mlines_per_sec:.3},\n  \
         \"hotpath_speedup\": {hotpath_speedup:.3},\n  \"lines_accessed\": {}\n}}\n",
        flat.lines
    ));
    harness.finish()
}
