//! Regenerates the paper's Table II: benchmark details, from the actual
//! generated traces.

use kindle_bench::*;
use kindle_core::experiments::CsvRow;
use kindle_core::trace::WorkloadKind;
use kindle_core::types::AccessKind;

/// One measured benchmark-mix row (local to this binary: Table II is
/// derived from the trace generator, not from an experiment driver).
struct Table2Row {
    benchmark: String,
    ops: u64,
    read_pct: f64,
    write_pct: f64,
}

impl CsvRow for Table2Row {
    fn csv_header() -> &'static str {
        "benchmark,ops,read_pct,write_pct"
    }
    fn csv_row(&self) -> String {
        format!("{},{},{:.2},{:.2}", self.benchmark, self.ops, self.read_pct, self.write_pct)
    }
}

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let ops = if quick_mode() { 200_000 } else { 10_000_000 };
    println!("TABLE II: Benchmark Details (measured from generated traces, {ops} ops)");
    rule(60);
    println!("{:<12} | {:>10} | {:>7} | {:>8}", "Benchmark", "Total Ops", "read %", "write %");
    rule(60);
    let mut rows = Vec::new();
    for kind in WorkloadKind::ALL {
        let mut reads = 0u64;
        for r in kind.stream(ops, 42) {
            if r.op == AccessKind::Read {
                reads += 1;
            }
        }
        rows.push(Table2Row {
            benchmark: kind.spec().name.to_string(),
            ops,
            read_pct: 100.0 * reads as f64 / ops as f64,
            write_pct: 100.0 * (ops - reads) as f64 / ops as f64,
        });
    }
    maybe_csv(&rows);
    harness.maybe_json(&rows);
    for r in &rows {
        println!(
            "{:<12} | {:>10} | {:>6.0} | {:>7.0}",
            r.benchmark, r.ops, r.read_pct, r.write_pct
        );
    }
    rule(60);
    println!("paper: Gapbs_pr 77/23, G500_sssp 68/32, Ycsb_mem 71/29");
    harness.finish()
}
