//! Regenerates the paper's Table II: benchmark details, from the actual
//! generated traces.

use kindle_bench::*;
use kindle_core::trace::WorkloadKind;
use kindle_core::types::AccessKind;

fn main() {
    let ops = if quick_mode() { 200_000 } else { 10_000_000 };
    println!("TABLE II: Benchmark Details (measured from generated traces, {ops} ops)");
    rule(60);
    println!("{:<12} | {:>10} | {:>7} | {:>8}", "Benchmark", "Total Ops", "read %", "write %");
    rule(60);
    for kind in WorkloadKind::ALL {
        let mut reads = 0u64;
        for r in kind.stream(ops, 42) {
            if r.op == AccessKind::Read {
                reads += 1;
            }
        }
        println!(
            "{:<12} | {:>10} | {:>6.0} | {:>7.0}",
            kind.spec().name,
            ops,
            100.0 * reads as f64 / ops as f64,
            100.0 * (ops - reads) as f64 / ops as f64
        );
    }
    rule(60);
    println!("paper: Gapbs_pr 77/23, G500_sssp 68/32, Ycsb_mem 71/29");
}
