//! Regenerates Figure 4b: execution time vs. allocation stride.

use kindle_bench::*;
use kindle_core::experiments::{run_fig4b, Fig4bParams};

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let p = if quick_mode() { Fig4bParams::quick() } else { Fig4bParams::paper() };
    println!("FIGURE 4b: ten 4 KiB pages at different strides");
    rule(56);
    println!("{:>7} | {:>12} | {:>14}", "stride", "rebuild ms", "persistent ms");
    rule(56);
    let rows = run_fig4b(&p)?;
    maybe_csv(&rows);
    harness.maybe_json(&rows);
    for r in &rows {
        println!("{:>7} | {:>12} | {:>14}", r.stride, ms(r.rebuild_ms), ms(r.persistent_ms));
    }
    rule(56);
    println!("paper shape: persistent slightly worse at 1GB/2MB strides");
    println!("(more page-table levels written), better at 4KB.");
    harness.finish()
}
