//! Seed-sweep study: regenerates Fig. 4a and Table IV on degrading NVM
//! media across a range of fault seeds and reports the retirement-cost
//! overhead against the fault-free baseline.
//!
//! Each seed shuffles the per-line endurance jitter, so the sweep shows
//! how sensitive the paper's headline persistence numbers are to *where*
//! the media wears out, not just whether it does. Seeds run as
//! independent fork-join items: each cell publishes its own ambient
//! media-fault model, so the whole sweep scales with `--jobs` while
//! every per-seed result stays byte-identical to a serial run.
//!
//! Each seed also runs the data-integrity grid
//! ([`run_data_integrity_sweep_jobs`]) with a per-seed corruption load,
//! charting the healed-vs-poisoned frontier: how much damage the checksum
//! patrol absorbs before graceful degradation starts costing pages.
//!
//! `--faults <seed>` moves the base of the swept seed range;
//! `--stuck <N>` scatters `N` stuck-at cells per seed on top of the wear
//! model; `--plot <path>` renders the per-seed overheads and the
//! integrity survival fraction as a self-contained SVG (pure markup, no
//! external tooling).

use kindle_bench::*;
use kindle_core::mem::MediaFaultConfig;
use kindle_faults::run_data_integrity_sweep_jobs;

/// The swept fault model: the wear budget is cranked far below the
/// default (4096 writes/line) so the hot lines of even a quick run — the
/// PTE consistency log ring and the page-table frames themselves — wear
/// out and exercise the retry-then-retire loop. Stuck cells default to
/// *off* but `--stuck <N>` turns them on: with the per-line ECP
/// correction budget armed, a stuck bit costs a correction entry at
/// write time instead of silently corrupting stored data, so even the
/// NVM-resident page tables survive and every seed completes.
fn sweep_faults(seed: u64, stuck: usize) -> MediaFaultConfig {
    let correction_entries = if stuck > 0 { STUCK_CORRECTION_ENTRIES } else { 0 };
    MediaFaultConfig {
        wear_limit: 64,
        stuck_cells: stuck,
        correction_entries,
        ..MediaFaultConfig::with_seed(seed)
    }
}

struct SeedRow {
    seed: u64,
    fig4a_ms: f64,
    table4_ms: f64,
    fig4a_overhead: f64,
    table4_overhead: f64,
    /// Data lines the checksum patrol healed across this seed's
    /// data-integrity grid.
    data_healed: u64,
    /// Data frames the grid's zero-budget arm lost to poisoning.
    data_poisoned: u64,
}

/// Sum of persistent-scheme times across Fig. 4a rows (ms).
fn fig4a_persistent_ms(rows: &[experiments::Fig4aRow]) -> f64 {
    rows.iter().map(|r| r.persistent_ms).sum()
}

/// Sum of persistent-scheme times across Table IV cells (ms).
fn table4_persistent_ms(rows: &[experiments::Table4Row]) -> f64 {
    rows.iter().map(|r| r.persistent_ms).sum()
}

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let (p4a, pt4, nseeds) = if quick_mode() {
        (experiments::Fig4aParams::quick(), experiments::Table4Params::quick(), 4u64)
    } else {
        (experiments::Fig4aParams::paper(), experiments::Table4Params::paper(), 16u64)
    };
    let base = sim::thread_media_faults().map_or(0xBAD_5EED, |f| f.seed);
    let jobs = harness.jobs();
    let stuck = harness.stuck().unwrap_or(0);
    println!("SEEDSWEEP: Fig. 4a + Table IV under media faults, {nseeds} seeds from {base:#x}");
    println!(
        "({jobs} workers, {stuck} stuck cells/seed; overhead = persistent-scheme ms vs \
         fault-free baseline)"
    );
    rule(74);

    // Fault-free baseline first, on a clean ambient model. `par_map_cells`
    // inside the drivers republishes the caller's model per cell, so the
    // baseline stays fault-free at any worker count.
    sim::set_thread_media_faults(None);
    let base4a = fig4a_persistent_ms(&experiments::run_fig4a(&p4a)?);
    let baset4 = table4_persistent_ms(&experiments::run_table4(&pt4)?);

    let seeds: Vec<u64> = (0..nseeds).map(|i| base.wrapping_add(i)).collect();
    let rows: Vec<SeedRow> = parallel::par_map(jobs, seeds, |seed| -> Result<SeedRow> {
        sim::set_thread_media_faults(Some(sweep_faults(seed, stuck)));
        let fig4a = experiments::run_fig4a(&p4a);
        let table4 = experiments::run_table4(&pt4);
        sim::set_thread_media_faults(None);
        let fig4a_ms = fig4a_persistent_ms(&fig4a?);
        let table4_ms = table4_persistent_ms(&table4?);
        // The healed-vs-poisoned frontier: seed `base + i` corrupts
        // `1 + i mod 4` data lines, so across the sweep the budgeted arm's
        // heal count climbs while the zero-budget arm keeps losing exactly
        // one page — graceful degradation does not spread with corruption.
        let lines = 1 + (seed.wrapping_sub(base) % 4) as usize;
        let integ = run_data_integrity_sweep_jobs(seed, lines, 1)?;
        Ok(SeedRow {
            seed,
            fig4a_ms,
            table4_ms,
            fig4a_overhead: fig4a_ms / base4a,
            table4_overhead: table4_ms / baset4,
            data_healed: integ.data_healed,
            data_poisoned: integ.data_poisoned,
        })
    })
    .into_iter()
    .collect::<Result<_>>()?;

    println!(
        "{:>18} | {:>10} | {:>8} | {:>10} | {:>8} | {:>6} | {:>6}",
        "seed", "fig4a ms", "ovh", "table4 ms", "ovh", "healed", "lost"
    );
    rule(74);
    println!(
        "{:>18} | {:>10} | {:>8} | {:>10} | {:>8} | {:>6} | {:>6}",
        "(fault-free)",
        ms(base4a),
        "1.000x",
        ms(baset4),
        "1.000x",
        "-",
        "-"
    );
    for r in &rows {
        println!(
            "{:>#18x} | {:>10} | {:>7.3}x | {:>10} | {:>7.3}x | {:>6} | {:>6}",
            r.seed,
            ms(r.fig4a_ms),
            r.fig4a_overhead,
            ms(r.table4_ms),
            r.table4_overhead,
            r.data_healed,
            r.data_poisoned
        );
    }
    rule(74);
    let worst4a = rows.iter().map(|r| r.fig4a_overhead).fold(f64::MIN, f64::max);
    let worstt4 = rows.iter().map(|r| r.table4_overhead).fold(f64::MIN, f64::max);
    println!("worst-case overhead over {nseeds} seeds: fig4a {worst4a:.3}x, table4 {worstt4:.3}x");
    println!("(retry-then-retire keeps the tail bounded: faults cost lines, not crashes)");
    let healed: u64 = rows.iter().map(|r| r.data_healed).sum();
    let poisoned: u64 = rows.iter().map(|r| r.data_poisoned).sum();
    println!(
        "data-integrity frontier: {healed} lines healed vs {poisoned} pages poisoned \
         across {nseeds} seeds"
    );

    let mut body = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "\n  {{\"seed\": {}, \"fig4a_ms\": {:.3}, \"fig4a_overhead\": {:.4}, \
             \"table4_ms\": {:.3}, \"table4_overhead\": {:.4}, \
             \"data_healed\": {}, \"data_poisoned\": {}}}",
            r.seed,
            r.fig4a_ms,
            r.fig4a_overhead,
            r.table4_ms,
            r.table4_overhead,
            r.data_healed,
            r.data_poisoned
        ));
    }
    body.push_str("\n]");
    harness.maybe_json_body(&body);
    if let Some(path) = harness.plot_path() {
        match std::fs::write(path, render_svg(&rows)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("plot write failed: {e}"),
        }
    }
    harness.finish()
}

/// Renders the per-seed overhead factors as a self-contained SVG line
/// chart: one polyline per artifact, a dashed 1.0x baseline, and the seed
/// index on the x axis. Pure string assembly — the plot opens in any
/// browser with no external tooling or fonts beyond `monospace`.
fn render_svg(rows: &[SeedRow]) -> String {
    const W: f64 = 640.0;
    const H: f64 = 360.0;
    const ML: f64 = 56.0; // left margin (y labels)
    const MR: f64 = 16.0;
    const MT: f64 = 34.0; // top margin (title)
    const MB: f64 = 40.0; // bottom margin (x labels)
    let ymax = rows
        .iter()
        .flat_map(|r| [r.fig4a_overhead, r.table4_overhead])
        .fold(1.0f64, f64::max)
        .mul_add(1.05, 0.0)
        .max(1.1);
    let n = rows.len().max(2);
    let x = |i: usize| ML + (W - ML - MR) * i as f64 / (n - 1) as f64;
    let y = |v: f64| MT + (H - MT - MB) * (1.0 - v / ymax);
    let series = |pick: fn(&SeedRow) -> f64| -> String {
        rows.iter().enumerate().map(|(i, r)| format!("{:.1},{:.1}", x(i), y(pick(r)))).fold(
            String::new(),
            |mut acc, p| {
                if !acc.is_empty() {
                    acc.push(' ');
                }
                acc.push_str(&p);
                acc
            },
        )
    };
    let mut s = String::new();
    s.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"0 0 {W} {H}\" \
         font-family=\"monospace\" font-size=\"11\">\n<rect width=\"{W}\" height=\"{H}\" \
         fill=\"white\"/>\n<text x=\"{ML}\" y=\"20\" font-size=\"13\">seedsweep: \
         persistent-scheme overhead vs fault-free baseline</text>\n"
    ));
    // y gridlines at even fractions of the range, labelled in overhead x.
    for t in 0..=4 {
        let v = ymax * f64::from(t) / 4.0;
        let yy = y(v);
        s.push_str(&format!(
            "<line x1=\"{ML}\" y1=\"{yy:.1}\" x2=\"{:.1}\" y2=\"{yy:.1}\" stroke=\"#ddd\"/>\n\
             <text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"end\">{v:.2}x</text>\n",
            W - MR,
            ML - 6.0,
            yy + 4.0
        ));
    }
    // The 1.0x baseline: everything above it is fault-model cost.
    s.push_str(&format!(
        "<line x1=\"{ML}\" y1=\"{0:.1}\" x2=\"{1:.1}\" y2=\"{0:.1}\" stroke=\"#888\" \
         stroke-dasharray=\"4 3\"/>\n",
        y(1.0),
        W - MR
    ));
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">{:#x}</text>\n",
            x(i),
            H - MB + 16.0,
            r.seed & 0xff
        ));
    }
    for (pick, color, label, ly) in [
        (fig4a_pick as fn(&SeedRow) -> f64, "#1f77b4", "fig4a", 0),
        (table4_pick as fn(&SeedRow) -> f64, "#d62728", "table4", 1),
        (integrity_pick as fn(&SeedRow) -> f64, "#2ca02c", "integrity", 2),
    ] {
        s.push_str(&format!(
            "<polyline points=\"{}\" fill=\"none\" stroke=\"{color}\" stroke-width=\"1.5\"/>\n",
            series(pick)
        ));
        for (i, r) in rows.iter().enumerate() {
            s.push_str(&format!(
                "<circle cx=\"{:.1}\" cy=\"{:.1}\" r=\"2.5\" fill=\"{color}\"/>\n",
                x(i),
                y(pick(r))
            ));
        }
        let yy = MT + 14.0 * f64::from(ly);
        s.push_str(&format!(
            "<line x1=\"{0:.1}\" y1=\"{yy:.1}\" x2=\"{1:.1}\" y2=\"{yy:.1}\" stroke=\"{color}\" \
             stroke-width=\"1.5\"/>\n<text x=\"{2:.1}\" y=\"{3:.1}\">{label}</text>\n",
            W - MR - 110.0,
            W - MR - 90.0,
            W - MR - 84.0,
            yy + 4.0
        ));
    }
    s.push_str(&format!(
        "<text x=\"{:.1}\" y=\"{:.1}\" text-anchor=\"middle\">seed (low byte)</text>\n</svg>\n",
        (ML + W - MR) / 2.0,
        H - 8.0
    ));
    s
}

fn fig4a_pick(r: &SeedRow) -> f64 {
    r.fig4a_overhead
}

fn table4_pick(r: &SeedRow) -> f64 {
    r.table4_overhead
}

/// The healed-vs-poisoned frontier as a survival fraction: of all data
/// lines the grid corrupted, the share the patrol restored rather than
/// had to give up on (1.0 = every line healed).
fn integrity_pick(r: &SeedRow) -> f64 {
    let total = r.data_healed + r.data_poisoned;
    if total == 0 {
        return 1.0;
    }
    r.data_healed as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_is_self_contained_and_covers_every_row() {
        let rows = vec![
            SeedRow {
                seed: 0xA0,
                fig4a_ms: 10.0,
                table4_ms: 20.0,
                fig4a_overhead: 1.1,
                table4_overhead: 1.3,
                data_healed: 1,
                data_poisoned: 1,
            },
            SeedRow {
                seed: 0xA1,
                fig4a_ms: 11.0,
                table4_ms: 21.0,
                fig4a_overhead: 1.2,
                table4_overhead: 1.25,
                data_healed: 4,
                data_poisoned: 1,
            },
        ];
        let svg = render_svg(&rows);
        assert!(svg.starts_with("<svg "), "{svg}");
        assert!(svg.trim_end().ends_with("</svg>"), "{svg}");
        assert_eq!(svg.matches("<polyline").count(), 3, "one line per artifact");
        assert_eq!(svg.matches("<circle").count(), 6, "one marker per row per artifact");
        assert!(svg.contains("fig4a") && svg.contains("table4") && svg.contains("integrity"));
        assert!(!svg.contains("href"), "self-contained: no external references");
    }
}
