//! Seed-sweep study: regenerates Fig. 4a and Table IV on degrading NVM
//! media across a range of fault seeds and reports the retirement-cost
//! overhead against the fault-free baseline.
//!
//! Each seed shuffles the per-line endurance jitter, so the sweep shows
//! how sensitive the paper's headline persistence numbers are to *where*
//! the media wears out, not just whether it does. Seeds run as
//! independent fork-join items: each cell publishes its own ambient
//! media-fault model, so the whole sweep scales with `--jobs` while
//! every per-seed result stays byte-identical to a serial run.
//!
//! `--faults <seed>` moves the base of the swept seed range.

use kindle_bench::*;
use kindle_core::mem::MediaFaultConfig;

/// The swept fault model: the wear budget is cranked far below the
/// default (4096 writes/line) so the hot lines of even a quick run — the
/// PTE consistency log ring and the page-table frames themselves — wear
/// out and exercise the retry-then-retire loop. Stuck cells are
/// deliberately *off*: a stuck bit silently corrupts stored data (that
/// is its modeled physics), and with page tables resident in NVM a
/// corrupted PTE is not a slowdown but an OS-fatal translation fault —
/// a failure mode this overhead study is not about. Wear-out, by
/// contrast, is detected by the controller's write-verify and costs only
/// retries plus frame retirement, so every seed completes.
fn sweep_faults(seed: u64) -> MediaFaultConfig {
    MediaFaultConfig { wear_limit: 64, stuck_cells: 0, ..MediaFaultConfig::with_seed(seed) }
}

struct SeedRow {
    seed: u64,
    fig4a_ms: f64,
    table4_ms: f64,
    fig4a_overhead: f64,
    table4_overhead: f64,
}

/// Sum of persistent-scheme times across Fig. 4a rows (ms).
fn fig4a_persistent_ms(rows: &[experiments::Fig4aRow]) -> f64 {
    rows.iter().map(|r| r.persistent_ms).sum()
}

/// Sum of persistent-scheme times across Table IV cells (ms).
fn table4_persistent_ms(rows: &[experiments::Table4Row]) -> f64 {
    rows.iter().map(|r| r.persistent_ms).sum()
}

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let (p4a, pt4, nseeds) = if quick_mode() {
        (experiments::Fig4aParams::quick(), experiments::Table4Params::quick(), 4u64)
    } else {
        (experiments::Fig4aParams::paper(), experiments::Table4Params::paper(), 16u64)
    };
    let base = sim::thread_media_fault_seed().unwrap_or(0xBAD_5EED);
    let jobs = harness.jobs();
    println!("SEEDSWEEP: Fig. 4a + Table IV under media faults, {nseeds} seeds from {base:#x}");
    println!("({jobs} workers; overhead = persistent-scheme ms vs fault-free baseline)");
    rule(74);

    // Fault-free baseline first, on a clean ambient model. `par_map_cells`
    // inside the drivers republishes the caller's model per cell, so the
    // baseline stays fault-free at any worker count.
    sim::set_thread_media_faults(None);
    let base4a = fig4a_persistent_ms(&experiments::run_fig4a(&p4a)?);
    let baset4 = table4_persistent_ms(&experiments::run_table4(&pt4)?);

    let seeds: Vec<u64> = (0..nseeds).map(|i| base.wrapping_add(i)).collect();
    let rows: Vec<SeedRow> = parallel::par_map(jobs, seeds, |seed| -> Result<SeedRow> {
        sim::set_thread_media_faults(Some(sweep_faults(seed)));
        let fig4a = experiments::run_fig4a(&p4a);
        let table4 = experiments::run_table4(&pt4);
        sim::set_thread_media_faults(None);
        let fig4a_ms = fig4a_persistent_ms(&fig4a?);
        let table4_ms = table4_persistent_ms(&table4?);
        Ok(SeedRow {
            seed,
            fig4a_ms,
            table4_ms,
            fig4a_overhead: fig4a_ms / base4a,
            table4_overhead: table4_ms / baset4,
        })
    })
    .into_iter()
    .collect::<Result<_>>()?;

    println!(
        "{:>18} | {:>10} | {:>8} | {:>10} | {:>8}",
        "seed", "fig4a ms", "ovh", "table4 ms", "ovh"
    );
    rule(74);
    println!(
        "{:>18} | {:>10} | {:>8} | {:>10} | {:>8}",
        "(fault-free)",
        ms(base4a),
        "1.000x",
        ms(baset4),
        "1.000x"
    );
    for r in &rows {
        println!(
            "{:>#18x} | {:>10} | {:>7.3}x | {:>10} | {:>7.3}x",
            r.seed,
            ms(r.fig4a_ms),
            r.fig4a_overhead,
            ms(r.table4_ms),
            r.table4_overhead
        );
    }
    rule(74);
    let worst4a = rows.iter().map(|r| r.fig4a_overhead).fold(f64::MIN, f64::max);
    let worstt4 = rows.iter().map(|r| r.table4_overhead).fold(f64::MIN, f64::max);
    println!("worst-case overhead over {nseeds} seeds: fig4a {worst4a:.3}x, table4 {worstt4:.3}x");
    println!("(retry-then-retire keeps the tail bounded: faults cost lines, not crashes)");

    let mut body = String::from("[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push_str(&format!(
            "\n  {{\"seed\": {}, \"fig4a_ms\": {:.3}, \"fig4a_overhead\": {:.4}, \
             \"table4_ms\": {:.3}, \"table4_overhead\": {:.4}}}",
            r.seed, r.fig4a_ms, r.fig4a_overhead, r.table4_ms, r.table4_overhead
        ));
    }
    body.push_str("\n]");
    harness.maybe_json_body(&body);
    harness.finish()
}
