//! CI tier-2 data-integrity benchmark: runs the checksummed-patrol crash
//! grid (`run_data_integrity_sweep_jobs` — ECP budget × daemons on/off,
//! stuck cells seeded under mapped data frames) serially and on the
//! resolved worker count, proves the two produce bit-identical outcomes,
//! and records the healed/poisoned/killed counters in the bench JSON
//! envelope (`BENCH_data_integrity.json` in CI, diffed against golden
//! ranges).
//!
//! Every grid point asserts the integrity contract internally (healable
//! faults restore byte-identical data, unhealable ones poison the page and
//! kill the owner with no corrupt read ever surfacing), so this binary
//! failing is a correctness signal, not just a perf regression.
//!
//! A second probe builds one machine with `patrold` armed at the
//! `--patrol <interval-us>` cadence (default 250 µs) and reports how many
//! verify batches and frame checks a fixed workload absorbs — the knob CI
//! can turn to price patrol overhead.

use kindle_bench::*;
use kindle_core::sim::DEFAULT_PATROL_INTERVAL;
use kindle_faults::run_data_integrity_sweep_jobs;

/// Fixed sweep seed (sibling of the crash-sweep bench seed).
const SEED: u64 = 0x00c0_ffee_4b1d_0002;

/// Data lines corrupted per grid point unless `--stuck` overrides it.
const STUCK_LINES: usize = 3;

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let jobs = harness.jobs();
    let stuck = harness.stuck().unwrap_or(STUCK_LINES);
    println!("DATA-INTEGRITY: ECP-budget x daemon grid, {stuck} corrupt lines/point, serial vs {jobs} workers");
    rule(78);

    let t0 = std::time::Instant::now();
    let serial = run_data_integrity_sweep_jobs(SEED, stuck, 1)?;
    let serial_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = std::time::Instant::now();
    let threaded = run_data_integrity_sweep_jobs(SEED, stuck, jobs)?;
    let parallel_ms = t1.elapsed().as_secs_f64() * 1e3;
    assert_eq!(serial, threaded, "jobs=1 vs jobs={jobs} must agree bit-for-bit");
    println!(
        "{:<10} | {:>6} | {:>6} | {:>8} | {:>6} | {:>9} | {:>9}",
        "grid", "points", "healed", "poisoned", "killed", "serial ms", "par ms"
    );
    rule(78);
    println!(
        "{:<10} | {:>6} | {:>6} | {:>8} | {:>6} | {:>9} | {:>9}",
        "integrity",
        serial.points,
        serial.data_healed,
        serial.data_poisoned,
        serial.procs_killed,
        ms(serial_ms),
        ms(parallel_ms)
    );

    // Patrol-cadence probe: one clean machine, patrold at the requested
    // period, a fixed NVM touch loop. No faults — this prices the patrol
    // itself, not the recovery work.
    let interval = harness.patrol_interval().unwrap_or(DEFAULT_PATROL_INTERVAL);
    let cfg = MachineConfig::small().with_patrol_interval(interval);
    let mut m = Machine::new(cfg)?;
    let pid = m.spawn_process()?;
    let va = m.mmap(pid, 16 * 4096, Prot::RW, MapFlags::NVM)?;
    for i in 0..20_000u64 {
        m.access(pid, va + (i % 16) * 4096, AccessKind::Write)?;
    }
    let report = m.report();
    let patrol = report.patrol.clone().expect("patrold armed");
    println!(
        "patrol probe: {} passes, {} frames checked at {} cycle interval",
        patrol.passes,
        patrol.frames_checked,
        interval.as_u64()
    );

    let body = format!(
        "[\n  {{\"grid\": \"integrity\", \"points\": {}, \"data_healed\": {}, \
         \"data_poisoned\": {}, \"procs_killed\": {}, \"digest\": \"{:#018x}\", \
         \"serial_ms\": {serial_ms:.1}, \"parallel_ms\": {parallel_ms:.1}}},\n  \
         {{\"grid\": \"patrol-probe\", \"interval_cycles\": {}, \"patrol_passes\": {}, \
         \"patrol_frames_checked\": {}, \"patrol_lines_detected\": {}}}\n]",
        serial.points,
        serial.data_healed,
        serial.data_poisoned,
        serial.procs_killed,
        serial.digest,
        interval.as_u64(),
        patrol.passes,
        patrol.frames_checked,
        patrol.lines_detected
    );
    harness.maybe_json_body(&body);
    rule(78);
    println!("digest equality verified: parallel integrity sweeps are byte-identical to serial.");
    harness.finish()
}
