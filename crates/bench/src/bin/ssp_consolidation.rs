//! Ablation the paper calls out as future-enabled by Kindle: the influence
//! of the SSP page-consolidation thread frequency.

use kindle_bench::*;
use kindle_core::experiments::run_consolidation_sweep;
use kindle_core::trace::WorkloadKind;

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let ops = if quick_mode() { 150_000 } else { 2_000_000 };
    let sweeps = [1u64, 2, 5, 10];
    println!("ABLATION: SSP consolidation-thread interval (5 ms consistency interval, {ops} ops)");
    rule(70);
    println!(
        "{:<12} | {:>14} | {:>10} | {:>14}",
        "benchmark", "consolidation", "normalized", "consolidated"
    );
    rule(70);
    let rows = run_consolidation_sweep(WorkloadKind::YcsbMem, ops, 42, &sweeps)?;
    maybe_csv(&rows);
    harness.maybe_json(&rows);
    for r in &rows {
        println!(
            "{:<12} | {:>11} ms | {:>9.3}x | {:>14}",
            r.benchmark, r.consolidation_ms, r.normalized, r.pages_consolidated
        );
    }
    rule(70);
    println!("the paper fixes this at 1 ms, noting lower intervals would raise");
    println!("consolidation overhead — this sweep quantifies that trade-off.");
    harness.finish()
}
