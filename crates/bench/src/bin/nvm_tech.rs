//! Ablation (paper §V-D): swap the NVM technology profile and rerun the
//! persistence and workload studies — "the scope for such studies
//! increases the value of Kindle in hybrid memory research".
//!
//! Technologies come from the backend registry's NVM subset
//! ([`kindle_core::mem::Backend::registry`]), the same source of truth
//! as `NvmConfig::technologies()` — a preset can never drift from its
//! backend.

use kindle_bench::*;
use kindle_core::mem::Backend;
use kindle_core::os::PtMode;
use kindle_core::prelude::*;
use kindle_core::types::PAGE_SIZE;

/// The registered NVM technology backends, in registry order.
fn technologies() -> Vec<Backend> {
    Backend::registry().iter().copied().filter(|b| b.instance().is_nvm_technology()).collect()
}

fn persistence_cell(backend: Backend, mode: PtMode) -> Result<f64> {
    let mut cfg = MachineConfig::table_i()
        .with_pt_mode(mode)
        .with_checkpointing(Cycles::from_millis(10))
        .with_backend(backend);
    cfg.costs.mapping_list_op = 2600;
    cfg.costs.zero_new_frames = false;
    let mut m = Machine::new(cfg)?;
    let pid = m.spawn_process()?;
    let t0 = m.now();
    let size = 128u64 << 20;
    let va = m.mmap(pid, size, Prot::RW, MapFlags::NVM)?;
    for i in 0..size / PAGE_SIZE as u64 {
        m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write)?;
    }
    for _ in 0..4 {
        for i in 0..size / PAGE_SIZE as u64 {
            m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Read)?;
        }
    }
    Ok((m.now() - t0).as_millis_f64())
}

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let ops = if quick_mode() { 100_000 } else { 1_000_000 };
    println!("ABLATION: NVM technology sweep");
    println!();
    println!("(a) page-table schemes, 128 MiB sequential benchmark, 10 ms checkpoints");
    rule(66);
    println!(
        "{:<10} | {:>12} | {:>14} | {:>9}",
        "technology", "rebuild ms", "persistent ms", "reb/pers"
    );
    rule(66);
    let cells = parallel::par_map_cells(technologies(), |backend| {
        let reb = persistence_cell(backend, PtMode::Rebuild)?;
        let per = persistence_cell(backend, PtMode::Persistent)?;
        Ok((backend.instance().label(), reb, per))
    })?;
    for (name, reb, per) in cells {
        println!("{:<10} | {:>12} | {:>14} | {:>8.2}x", name, ms(reb), ms(per), reb / per);
    }
    println!();
    println!("(b) Ycsb_mem replay ({ops} ops), no prototype engines");
    rule(40);
    println!("{:<10} | {:>12}", "technology", "exec ms");
    rule(40);
    let kindle = Kindle::prepare_streaming(WorkloadKind::YcsbMem, ops, 42);
    let replays = parallel::par_map_cells(technologies(), |backend| {
        let cfg = MachineConfig::table_i().with_backend(backend);
        let (run, _) = kindle.simulate(cfg, ReplayOptions::default())?;
        Ok((backend.instance().label(), run.cycles.as_millis_f64()))
    })?;
    for (name, exec_ms) in replays {
        println!("{:<10} | {:>12}", name, ms(exec_ms));
    }
    println!();
    println!("takeaway: the persistent scheme's appeal tracks the NVM write path —");
    println!("fast-write technologies (STT-MRAM) shrink its consistency tax, while");
    println!("read-heavy replay tracks the read latency instead.");
    harness.finish()
}
