//! Regenerates Figure 5: SSP consistency-interval overhead.

use kindle_bench::*;
use kindle_core::experiments::{run_fig5, Fig5Params};

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let mut p = if quick_mode() { Fig5Params::quick() } else { Fig5Params::paper() };
    if quick_mode() {
        p.workloads = kindle_core::trace::WorkloadKind::ALL.to_vec();
    }
    println!("FIGURE 5: SSP overhead, normalized to no memory consistency ({} ops)", p.ops);
    rule(78);
    println!(
        "{:<12} | {:>8} | {:>12} | {:>10} | {:>10} | {:>9}",
        "benchmark", "interval", "baseline ms", "SSP ms", "normalized", "overhead"
    );
    rule(78);
    let rows = run_fig5(&p)?;
    maybe_csv(&rows);
    harness.maybe_json(&rows);
    for r in &rows {
        println!(
            "{:<12} | {:>5} ms | {:>12} | {:>10} | {:>9.3}x | {:>8.1}%",
            r.benchmark,
            r.interval_ms,
            ms(r.baseline_ms),
            ms(r.ssp_ms),
            r.normalized,
            r.overhead * 100.0
        );
    }
    rule(78);
    // Average overhead reduction 1 ms -> 10 ms across benchmarks.
    let avg = |ms_i: u64| {
        let v: Vec<f64> =
            rows.iter().filter(|r| r.interval_ms == ms_i).map(|r| r.overhead).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    if rows.iter().any(|r| r.interval_ms == 1) && rows.iter().any(|r| r.interval_ms == 10) {
        println!("overhead reduction 1 ms -> 10 ms: {:.2}x (paper: ~3x average)", avg(1) / avg(10));
    }
    harness.finish()
}
