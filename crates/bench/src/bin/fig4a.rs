//! Regenerates Figure 4a: execution time vs. sequential allocation size
//! under the rebuild and persistent page-table schemes.

use kindle_bench::*;
use kindle_core::experiments::{run_fig4a, Fig4aParams};

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let p = if quick_mode() { Fig4aParams::quick() } else { Fig4aParams::paper() };
    println!(
        "FIGURE 4a: sequential alloc+access, checkpoint interval {} ms",
        p.interval.as_millis_f64()
    );
    rule(66);
    println!(
        "{:>8} | {:>12} | {:>14} | {:>9}",
        "size MiB", "rebuild ms", "persistent ms", "overhead"
    );
    rule(66);
    let rows = run_fig4a(&p)?;
    maybe_csv(&rows);
    harness.maybe_json(&rows);
    for r in &rows {
        println!(
            "{:>8} | {:>12} | {:>14} | {:>8.2}x",
            r.size_mb,
            ms(r.rebuild_ms),
            ms(r.persistent_ms),
            r.overhead()
        );
    }
    rule(66);
    println!("paper shape: overhead grows ~2.4x (64 MiB) -> ~74x (512 MiB);");
    println!("rebuild grows ~44x from 64 to 512 MiB.");
    harness.finish()
}
