//! Golden-range diff for the bench JSON artifacts CI publishes.
//!
//! Usage: `bench_diff <golden.txt> <artifact.json>...`
//!
//! Each non-comment golden line is `<artifact> <field> <min> <max>`; the
//! artifact is matched by file name among the paths on the command line,
//! and every occurrence of `"<field>": <number>` in it must fall inside
//! `[min, max]`. A field with zero occurrences fails too — a stale golden
//! entry is a regression in the diff itself, not a pass.
//!
//! `elapsed_ms` lines are interpreted as wall-clock **budgets** rather
//! than ranges: `max` is the budget, values inside it pass, values up to
//! [`GRACE`]` * max` print a warning but still pass (runner jitter), and
//! anything beyond hard-fails the job. `min` stays a hard floor (an
//! implausibly fast run means the job silently did nothing).
//!
//! One golden file serves every CI job: lines whose artifact is not among
//! the provided paths are skipped, so each job diffs only the artifacts it
//! produced. Two backstops keep the skipping honest — a provided artifact
//! that matches no golden line fails (a typo'd or unpinned artifact must
//! not pass silently), and an invocation that ends up checking nothing
//! fails outright.
//!
//! The scanner is deliberately dumb (substring + number parse) because
//! the bench envelope is flat, machine-written JSON; it needs no real
//! parser, and a dumb one cannot be fooled by formatting drift into
//! silently checking nothing.

use std::process::ExitCode;

/// Every numeric value attached to `"<field>":` anywhere in `content`,
/// in document order. Non-numeric values (e.g. hex-string digests) are
/// skipped.
fn scan_numbers(content: &str, field: &str) -> Vec<f64> {
    let needle = format!("\"{field}\":");
    let mut out = Vec::new();
    let mut rest = content;
    while let Some(pos) = rest.find(&needle) {
        let after = &rest[pos + needle.len()..];
        let trimmed = after.trim_start();
        let end = trimmed
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(trimmed.len());
        if let Ok(v) = trimmed[..end].parse::<f64>() {
            out.push(v);
        }
        rest = after;
    }
    out
}

/// Wall-clock budget grace factor: an `elapsed_ms` between `max` and
/// `GRACE * max` warns instead of failing, absorbing runner jitter while
/// still flagging the drift; beyond that the budget hard-fails.
const GRACE: f64 = 2.0;

fn run(args: &[String]) -> Result<(String, Vec<String>), Vec<String>> {
    if args.len() < 3 {
        return Err(vec!["usage: bench_diff <golden.txt> <artifact.json>...".to_string()]);
    }
    let golden = std::fs::read_to_string(&args[1])
        .map_err(|e| vec![format!("cannot read golden file {}: {e}", args[1])])?;
    let artifacts: Vec<(String, String)> = args[2..]
        .iter()
        .map(|path| {
            let name = path.rsplit('/').next().unwrap_or(path).to_string();
            let content = std::fs::read_to_string(path)
                .map_err(|e| vec![format!("cannot read artifact {path}: {e}")])?;
            Ok((name, content))
        })
        .collect::<Result<_, Vec<String>>>()?;
    let mut failures = Vec::new();
    let mut warnings = Vec::new();
    let mut checks = 0usize;
    let mut matched = vec![false; artifacts.len()];
    for (lineno, line) in golden.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let (name, field, min, max) = match parts.as_slice() {
            [name, field, min, max] => match (min.parse::<f64>(), max.parse::<f64>()) {
                (Ok(min), Ok(max)) => (*name, *field, min, max),
                _ => {
                    failures.push(format!("golden line {}: bad range: {line}", lineno + 1));
                    continue;
                }
            },
            _ => {
                failures.push(format!("golden line {}: expected 4 columns: {line}", lineno + 1));
                continue;
            }
        };
        // Golden lines for artifacts other jobs produce are not ours to check.
        let Some((idx, (_, content))) = artifacts.iter().enumerate().find(|(_, (n, _))| n == name)
        else {
            continue;
        };
        matched[idx] = true;
        let values = scan_numbers(content, field);
        if values.is_empty() {
            failures.push(format!("{name}: field \"{field}\" not found (stale golden entry?)"));
            continue;
        }
        checks += 1;
        for v in values {
            // `elapsed_ms` rows are wall-clock *budgets*, not ranges: a
            // value inside the budget passes, one within GRACE x budget
            // warns (runner jitter), and anything past that hard-fails —
            // that is the CI timing gate keeping the sweep tier honest
            // about its O(n) claim.
            if field == "elapsed_ms" {
                if v < min {
                    failures.push(format!(
                        "{name}: \"{field}\" = {v} below golden floor {min} (empty run?)"
                    ));
                } else if v > GRACE * max {
                    failures.push(format!(
                        "{name}: \"{field}\" = {v} blows the {max} ms budget by more than {GRACE}x"
                    ));
                } else if v > max {
                    warnings.push(format!(
                        "{name}: \"{field}\" = {v} over the {max} ms budget (within the {GRACE}x grace band)"
                    ));
                }
            } else if v < min || v > max {
                failures
                    .push(format!("{name}: \"{field}\" = {v} outside golden range [{min}, {max}]"));
            }
        }
    }
    for (i, (name, _)) in artifacts.iter().enumerate() {
        if !matched[i] {
            failures.push(format!("{name}: provided artifact has no golden entries"));
        }
    }
    if checks == 0 {
        failures.push("golden file contains no checks".to_string());
    }
    if failures.is_empty() {
        let summary =
            format!("bench_diff: {checks} golden checks over {} artifact(s): OK", artifacts.len());
        Ok((summary, warnings))
    } else {
        failures.extend(warnings);
        Err(failures)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match run(&args) {
        Ok((summary, warnings)) => {
            for w in &warnings {
                eprintln!("bench_diff: warning: {w}");
            }
            println!("{summary}");
            ExitCode::SUCCESS
        }
        Err(failures) => {
            for f in &failures {
                eprintln!("bench_diff: {f}");
            }
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
"jobs": 4,
"elapsed_ms": 120,
"rows": [
  {"mode": "a", "speedup": 2.5, "digest": "0xdeadbeef"},
  {"mode": "b", "speedup": 3.125, "digest": "0x00c0ffee"}
]
}"#;

    #[test]
    fn scan_finds_every_occurrence_in_order() {
        assert_eq!(scan_numbers(DOC, "speedup"), vec![2.5, 3.125]);
        assert_eq!(scan_numbers(DOC, "jobs"), vec![4.0]);
    }

    #[test]
    fn scan_skips_string_values_and_misses() {
        assert!(scan_numbers(DOC, "digest").is_empty(), "hex strings are not numbers");
        assert!(scan_numbers(DOC, "absent").is_empty());
    }

    #[test]
    fn scan_handles_negative_and_exponent_forms() {
        let doc = r#"{"x": -1.5, "y": 2e3}"#;
        assert_eq!(scan_numbers(doc, "x"), vec![-1.5]);
        assert_eq!(scan_numbers(doc, "y"), vec![2000.0]);
    }

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("kindle-bench-diff-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_str().unwrap().to_string()
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn in_range_artifact_passes() {
        let art = write_temp("ok.json", DOC);
        let gold = write_temp("ok.txt", "ok.json speedup 1.0 4.0\nok.json jobs 1 64\n");
        let (summary, warnings) = run(&args(&["bench_diff", &gold, &art])).unwrap();
        assert!(summary.contains("2 golden checks"), "{summary}");
        assert!(warnings.is_empty(), "{warnings:?}");
    }

    #[test]
    fn out_of_range_value_fails_with_context() {
        let art = write_temp("bad.json", DOC);
        let gold = write_temp("bad.txt", "bad.json speedup 3.0 4.0\n");
        let failures = run(&args(&["bench_diff", &gold, &art])).unwrap_err();
        assert!(failures.iter().any(|f| f.contains("\"speedup\" = 2.5 outside")), "{failures:?}");
    }

    #[test]
    fn elapsed_within_budget_passes_silently() {
        // DOC reports elapsed_ms = 120.
        let art = write_temp("budget-ok.json", DOC);
        let gold = write_temp("budget-ok.txt", "budget-ok.json elapsed_ms 1 200\n");
        let (summary, warnings) = run(&args(&["bench_diff", &gold, &art])).unwrap();
        assert!(summary.contains("1 golden checks"), "{summary}");
        assert!(warnings.is_empty(), "in-budget run must not warn: {warnings:?}");
    }

    #[test]
    fn elapsed_in_grace_band_warns_but_passes() {
        // Budget 100 < 120 <= 2x100: over budget but inside the grace band.
        let art = write_temp("budget-warn.json", DOC);
        let gold = write_temp("budget-warn.txt", "budget-warn.json elapsed_ms 1 100\n");
        let (summary, warnings) = run(&args(&["bench_diff", &gold, &art])).unwrap();
        assert!(summary.contains("OK"), "{summary}");
        assert_eq!(warnings.len(), 1, "{warnings:?}");
        assert!(warnings[0].contains("over the 100 ms budget"), "{warnings:?}");
    }

    #[test]
    fn elapsed_beyond_grace_band_fails() {
        // 120 > 2x50: the budget is blown outright. The floor fails too.
        let art = write_temp("budget-fail.json", DOC);
        let gold = write_temp("budget-fail.txt", "budget-fail.json elapsed_ms 1 50\n");
        let failures = run(&args(&["bench_diff", &gold, &art])).unwrap_err();
        assert!(failures.iter().any(|f| f.contains("blows the 50 ms budget")), "{failures:?}");

        let gold = write_temp("budget-floor.txt", "budget-fail.json elapsed_ms 500 10000\n");
        let failures = run(&args(&["bench_diff", &gold, &art])).unwrap_err();
        assert!(failures.iter().any(|f| f.contains("below golden floor")), "{failures:?}");
    }

    #[test]
    fn stale_field_missing_artifact_and_empty_golden_fail() {
        let art = write_temp("stale.json", DOC);
        let gold = write_temp("stale.txt", "stale.json absent 0 1\n");
        let failures = run(&args(&["bench_diff", &gold, &art])).unwrap_err();
        assert!(failures.iter().any(|f| f.contains("stale golden entry")), "{failures:?}");

        let gold = write_temp("missing.txt", "nonexistent.json jobs 0 1\n");
        let failures = run(&args(&["bench_diff", &gold, &art])).unwrap_err();
        assert!(failures.iter().any(|f| f.contains("no golden entries")), "{failures:?}");
        assert!(failures.iter().any(|f| f.contains("no checks")), "{failures:?}");

        let gold = write_temp("empty.txt", "# only comments\n\n");
        let failures = run(&args(&["bench_diff", &gold, &art])).unwrap_err();
        assert!(failures.iter().any(|f| f.contains("no checks")), "{failures:?}");
    }

    #[test]
    fn other_jobs_artifacts_are_skipped_but_provided_ones_must_be_pinned() {
        // One shared golden file, a per-job artifact subset: the lines for
        // the other job's artifact are skipped without failing.
        let art = write_temp("subset.json", DOC);
        let gold = write_temp("subset.txt", "subset.json jobs 1 64\nother-job.json latency 0 9\n");
        let (summary, _) = run(&args(&["bench_diff", &gold, &art])).unwrap();
        assert!(summary.contains("1 golden checks"), "{summary}");

        // But an artifact we did provide must have at least one golden line.
        let extra = write_temp("unpinned.json", DOC);
        let failures = run(&args(&["bench_diff", &gold, &art, &extra])).unwrap_err();
        assert!(
            failures.iter().any(|f| f.contains("unpinned.json") && f.contains("no golden entries")),
            "{failures:?}"
        );
    }
}
