//! Regenerates Table IV: influence of the checkpoint interval.

use kindle_bench::*;
use kindle_core::experiments::{run_table4, Table4Params};

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let p = if quick_mode() { Table4Params::quick() } else { Table4Params::paper() };
    println!("TABLE IV: checkpoint-interval sweep ({} MiB base)", p.base_mb);
    rule(70);
    println!(
        "{:>15} | {:>9} | {:>16} | {:>12}",
        "Alloc/Free Size", "Interval", "Persistent (ms)", "Rebuild (ms)"
    );
    rule(70);
    let rows = run_table4(&p)?;
    maybe_csv(&rows);
    harness.maybe_json(&rows);
    for r in &rows {
        let interval = if r.interval_ms >= 1000.0 {
            format!("{:.0} s", r.interval_ms / 1000.0)
        } else {
            format!("{:.0} ms", r.interval_ms)
        };
        println!(
            "{:>12} MiB | {:>9} | {:>16} | {:>12}",
            r.churn_mb,
            interval,
            ms(r.persistent_ms),
            ms(r.rebuild_ms)
        );
    }
    rule(70);
    println!("paper shape: persistent flat across intervals; rebuild ~5x better");
    println!("at 100 ms vs 10 ms; at 1 s rebuild drops slightly below persistent.");
    harness.finish()
}
