//! Ablation: HSCC DRAM pool size — the knob behind Table VI's
//! page-selection spike (dirty recycling starts when the hot set
//! outgrows the pool).

use kindle_bench::*;
use kindle_core::prelude::*;

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let ops = if quick_mode() { 150_000 } else { 1_000_000 };
    let kindle = Kindle::prepare_streaming(WorkloadKind::YcsbMem, ops, 42);
    println!("ABLATION: HSCC DRAM pool size (Ycsb_mem, threshold 5, {ops} ops)");
    rule(76);
    println!(
        "{:>10} | {:>10} | {:>9} | {:>9} | {:>7} | {:>10}",
        "pool pages", "exec ms", "migrated", "copyback", "sel %", "clean uses"
    );
    rule(76);
    let cells = parallel::par_map_cells(vec![128usize, 256, 512, 1024, 2048], |pool| {
        let cfg = MachineConfig::table_i().with_hscc(
            HsccConfig { fetch_threshold: 5, pool_pages: pool, ..Default::default() },
            true,
        );
        let (run, rep) = kindle.simulate(cfg, ReplayOptions::default())?;
        let s = rep.hscc.expect("hscc enabled");
        Ok((pool, run.cycles.as_millis_f64(), s))
    })?;
    for (pool, exec_ms, s) in cells {
        println!(
            "{:>10} | {:>10} | {:>9} | {:>9} | {:>7.2} | {:>10}",
            pool,
            ms(exec_ms),
            s.pages_migrated,
            s.copybacks,
            s.selection_share() * 100.0,
            s.clean_reuses
        );
    }
    rule(76);
    println!("a pool comfortably larger than the over-threshold working set makes");
    println!("page selection nearly free (all requests served from the free list).");
    harness.finish()
}
