//! Regenerates Table III: execution time with munmap/mmap churn.

use kindle_bench::*;
use kindle_core::experiments::{run_table3, Table3Params};

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let p = if quick_mode() { Table3Params::quick() } else { Table3Params::paper() };
    println!("TABLE III: alloc/free churn on a {} MiB base", p.base_mb);
    rule(58);
    println!("{:>15} | {:>16} | {:>12}", "Alloc/Free Size", "Persistent (ms)", "Rebuild (ms)");
    rule(58);
    let rows = run_table3(&p)?;
    maybe_csv(&rows);
    harness.maybe_json(&rows);
    for r in &rows {
        println!("{:>12} MiB | {:>16} | {:>12}", r.churn_mb, ms(r.persistent_ms), ms(r.rebuild_ms));
    }
    rule(58);
    println!("paper: persistent 325/389/517, rebuild 19377/23438/29376 (ms);");
    println!("shape: both grow with churn (~1.6x / ~1.5x from 64->256 MiB),");
    println!("rebuild far above persistent.");
    harness.finish()
}
