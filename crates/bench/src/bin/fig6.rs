//! Regenerates Figure 6 and Tables V & VI: HSCC OS-migration overhead,
//! pages migrated, and the page-selection vs page-copy split.

use kindle_bench::*;
use kindle_core::experiments::{run_fig6, Fig6Params};

fn main() -> Result<()> {
    let harness = Harness::from_args();
    let p = if quick_mode() { Fig6Params::quick() } else { Fig6Params::paper() };
    println!("FIGURE 6 + TABLES V/VI: HSCC fetch-threshold sweep ({} ops)", p.ops);
    rule(96);
    println!(
        "{:<12} | {:>4} | {:>11} | {:>11} | {:>10} | {:>9} | {:>7} | {:>7}",
        "benchmark", "Th", "hw-only ms", "with-OS ms", "normalized", "migrated", "sel %", "copy %"
    );
    rule(96);
    let rows = run_fig6(&p)?;
    maybe_csv(&rows);
    harness.maybe_json(&rows);
    for r in &rows {
        println!(
            "{:<12} | {:>4} | {:>11} | {:>11} | {:>9.3}x | {:>9} | {:>7.2} | {:>7.2}",
            r.benchmark,
            r.threshold,
            ms(r.hw_only_ms),
            ms(r.with_os_ms),
            r.normalized,
            r.pages_migrated,
            r.selection_pct,
            r.copy_pct
        );
    }
    rule(96);
    println!("paper shapes: all benchmarks show OS-migration overhead (>1x), falling");
    println!("as the threshold rises; Gapbs_pr lowest. Table V: migrations drop steeply");
    println!("with threshold (Ycsb ~13x at Th-25, ~101x at Th-50 vs Th-5). Table VI: page");
    println!("copy dominates (62-98%); selection spikes when free/clean pages run out.");
    harness.finish()
}
