//! Benchmark-harness support: experiment re-exports and table formatting
//! shared by the `fig*`/`table*` binaries that regenerate the paper's
//! evaluation artifacts.

pub use kindle_core::*;

use kindle_core::types::sanitize::{self, Installed, InvariantChecker, ViolationLog};

/// Flag summary printed when an unknown or malformed argument is seen.
pub const USAGE: &str = "[--quick] [--sanitize] [--faults <seed>] [--stuck <N>] \
     [--patrol <interval-us>] [--jobs <N>] [--csv <path>] [--json <path>] [--plot <path>] \
     [--timing <path>] [--verify-replay] [--legacy-maps] [--backend <name>]";

/// Per-line ECP correction budget armed alongside `--stuck`: two entries
/// absorb every realistically seeded cell (three uniform cells landing in
/// one line is vanishingly rare at bench scales), so stuck media costs
/// correction work instead of silently corrupting stored data.
pub const STUCK_CORRECTION_ENTRIES: u32 = 2;

/// Fault/sanitizer/parallelism CLI harness shared by the `fig*`/`table*`
/// binaries.
///
/// * `--sanitize` installs the cross-layer [`InvariantChecker`] for the
///   whole run; [`Harness::finish`] prints anything it caught and fails
///   the binary, so CI notices an experiment that corrupts state even
///   when its numbers still look plausible.
/// * `--faults <seed>` arms the deterministic NVM media-fault model
///   (wear-out, stuck cells, retry-then-retire) in every machine the
///   experiment builds on this thread — the figures can be regenerated
///   on degrading media without touching experiment code.
/// * `--stuck <N>` scatters `N` stuck-at cells over the NVM range and
///   enables a two-entry per-line ECP correction budget so the cells are
///   absorbed at write time rather than silently corrupting stored data.
///   Folded into the `--faults` model when one is armed; experiments
///   that build their own fault model read it via [`Harness::stuck`].
/// * `--patrol <interval-us>` publishes a data-frame patrol period for
///   experiments that arm the checksum patrol daemon
///   ([`Harness::patrol_interval`]); like standalone `--stuck` it is an
///   accessor, not ambient state — each binary decides which of its
///   machines run `patrold`.
/// * `--plot <path>` asks plot-capable binaries (`seedsweep`) to render
///   their rows as a self-contained SVG at `path`
///   ([`Harness::plot_path`]).
/// * `--jobs <N>` publishes the fork-join worker count the experiment
///   grids run on (default: `KINDLE_JOBS`, else available parallelism).
///   Results are byte-identical at any worker count.
/// * `--json <path>` makes [`Harness::maybe_json`] write the rows inside
///   an envelope carrying `jobs` and wall-clock `elapsed_ms`, which the
///   CI bench-smoke job diffs against golden ranges.
/// * `--timing <path>` publishes a secondary timing-artifact path
///   ([`Harness::timing_path`]); the `sweep` binary writes its
///   `SWEEP_timing.json` telemetry there.
/// * `--verify-replay` asks sweep-style binaries to cross-check the
///   snapshot-forked execution against the replay-from-zero oracle
///   ([`Harness::verify_replay`]); the digests must be byte-identical.
/// * `--legacy-maps` makes every machine the experiment builds on this
///   thread use the legacy ordered-map memory-controller stores instead
///   of the flat direct-indexed tables. Output must be byte-identical;
///   only throughput changes (this is the `hotpath` benchmark's
///   comparison baseline, and an escape hatch for bisecting the flat
///   layout).
/// * `--backend <name>` swaps the far-tier memory backend
///   ([`mem::Backend::registry`]: `pcm`, `numa`, `sttram`, `cxl`, ...)
///   under every machine the experiment builds on this thread. The
///   default `pcm` is byte-identical to not passing the flag; unknown
///   names exit 2 listing the registered backends. The resolved name is
///   echoed in every `--json` envelope.
///
/// Unknown `--*` flags are rejected: [`Harness::from_args`] prints the
/// usage line and exits with status 2 rather than silently running the
/// paper-scale default (the classic typo was `--quik`).
pub struct Harness {
    _guard: Option<Installed>,
    log: Option<ViolationLog>,
    jobs: usize,
    stuck: Option<usize>,
    patrol: Option<Cycles>,
    json_path: Option<String>,
    plot_path: Option<String>,
    timing_path: Option<String>,
    verify_replay: bool,
    backend: mem::Backend,
    started: std::time::Instant,
}

impl Harness {
    /// Parses `std::env::args()` and activates the requested machinery.
    /// On a malformed command line, prints the error plus usage and exits
    /// with status 2.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        match Self::try_from_arg_list(&args) {
            Ok(h) => h,
            Err(e) => {
                let bin = args.first().map_or("<bin>", String::as_str);
                eprintln!("{e}");
                eprintln!("usage: {bin} {USAGE}");
                std::process::exit(2);
            }
        }
    }

    /// Infallible wrapper kept for tests and simple callers.
    ///
    /// # Panics
    ///
    /// Panics on any malformed command line (unknown flag, missing or
    /// unparsable value).
    #[must_use]
    pub fn from_arg_list(args: &[String]) -> Self {
        match Self::try_from_arg_list(args) {
            Ok(h) => h,
            Err(e) => panic!("{e}"),
        }
    }

    /// Testable core of [`Harness::from_args`]: validates every flag and
    /// activates the requested machinery.
    ///
    /// # Errors
    ///
    /// Describes the first unknown `--*` flag, or a flag whose required
    /// value is missing or unparsable.
    pub fn try_from_arg_list(args: &[String]) -> std::result::Result<Self, String> {
        let mut sanitize_requested = false;
        let mut fault_seed = None;
        let mut stuck = None;
        let mut patrol = None;
        let mut jobs = None;
        let mut json_path = None;
        let mut plot_path = None;
        let mut timing_path = None;
        let mut verify_replay = false;
        let mut legacy_maps = false;
        let mut backend = None;
        let mut it = args.iter().skip(1);
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--sanitize" => sanitize_requested = true,
                "--quick" => {}
                "--faults" => {
                    let v = it.next().ok_or("--faults requires a u64 seed")?;
                    let seed =
                        v.parse::<u64>().map_err(|_| format!("--faults: not a u64 seed: {v:?}"))?;
                    fault_seed = Some(seed);
                }
                "--stuck" => {
                    let v = it.next().ok_or("--stuck requires a cell count")?;
                    let n = v
                        .parse::<usize>()
                        .map_err(|_| format!("--stuck: not a cell count: {v:?}"))?;
                    stuck = Some(n);
                }
                "--patrol" => {
                    let v = it.next().ok_or("--patrol requires an interval in microseconds")?;
                    let us = v
                        .parse::<u64>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--patrol: not a positive interval: {v:?}"))?;
                    patrol = Some(Cycles::from_micros(us));
                }
                "--jobs" => {
                    let v = it.next().ok_or("--jobs requires a worker count")?;
                    let n = v
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--jobs: not a positive integer: {v:?}"))?;
                    jobs = Some(n);
                }
                "--csv" => {
                    it.next().ok_or("--csv requires a path")?;
                }
                "--json" => {
                    json_path = Some(it.next().ok_or("--json requires a path")?.clone());
                }
                "--plot" => {
                    plot_path = Some(it.next().ok_or("--plot requires a path")?.clone());
                }
                "--timing" => {
                    timing_path = Some(it.next().ok_or("--timing requires a path")?.clone());
                }
                "--verify-replay" => verify_replay = true,
                "--legacy-maps" => legacy_maps = true,
                "--backend" => {
                    let v = it.next().ok_or_else(|| {
                        format!("--backend requires a name (registered: {})", mem::Backend::names())
                    })?;
                    let b = mem::Backend::from_name(v).ok_or_else(|| {
                        format!(
                            "--backend: unknown backend {v:?} (registered: {})",
                            mem::Backend::names()
                        )
                    })?;
                    backend = Some(b);
                }
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag: {other}"));
                }
                _ => {}
            }
        }
        let jobs = jobs.unwrap_or_else(parallel::default_jobs);
        parallel::set_thread_jobs(jobs);
        if let Some(seed) = fault_seed {
            let mut faults = mem::MediaFaultConfig::with_seed(seed);
            if let Some(n) = stuck {
                faults.stuck_cells = n;
                faults.correction_entries = STUCK_CORRECTION_ENTRIES;
            }
            kindle_core::sim::set_thread_media_faults(Some(faults));
        }
        if legacy_maps {
            kindle_core::sim::set_thread_legacy_maps(true);
        }
        if let Some(b) = backend {
            // Only publish when the flag was passed: the unset default
            // must stay byte-identical to the pre-backend harness.
            kindle_core::sim::set_thread_backend(Some(b));
        }
        let (guard, log) = if sanitize_requested {
            let checker = InvariantChecker::new();
            let log = checker.log();
            (Some(sanitize::install(Box::new(checker))), Some(log))
        } else {
            (None, None)
        };
        Ok(Harness {
            _guard: guard,
            log,
            jobs,
            stuck,
            patrol,
            json_path,
            plot_path,
            timing_path,
            verify_replay,
            backend: backend.unwrap_or_default(),
            started: std::time::Instant::now(),
        })
    }

    /// The resolved fork-join worker count.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Stuck-cell count requested with `--stuck <N>`, if any.
    #[must_use]
    pub fn stuck(&self) -> Option<usize> {
        self.stuck
    }

    /// Patrol-daemon period requested with `--patrol <interval-us>`, if
    /// any (already converted to cycles).
    #[must_use]
    pub fn patrol_interval(&self) -> Option<Cycles> {
        self.patrol
    }

    /// SVG output path requested with `--plot <path>`, if any.
    #[must_use]
    pub fn plot_path(&self) -> Option<&str> {
        self.plot_path.as_deref()
    }

    /// Timing-artifact path requested with `--timing <path>`, if any.
    #[must_use]
    pub fn timing_path(&self) -> Option<&str> {
        self.timing_path.as_deref()
    }

    /// True when `--verify-replay` asked for the snapshot-vs-replay
    /// cross-check.
    #[must_use]
    pub fn verify_replay(&self) -> bool {
        self.verify_replay
    }

    /// The resolved far-tier backend (`--backend <name>`, default PCM).
    #[must_use]
    pub fn backend(&self) -> mem::Backend {
        self.backend
    }

    /// Writes rows as JSON when `--json <path>` was passed, wrapped in the
    /// bench envelope (`jobs`, `elapsed_ms`, `rows`) consumed by the CI
    /// bench-smoke job's golden-range diff.
    pub fn maybe_json<R: kindle_core::experiments::CsvRow>(&self, rows: &[R]) {
        self.maybe_json_body(&kindle_core::experiments::to_json(rows));
    }

    /// [`Harness::maybe_json`] for a pre-rendered JSON value (used by
    /// binaries whose payload is not a row array, e.g. Table I's config).
    pub fn maybe_json_body(&self, body: &str) {
        let Some(path) = &self.json_path else { return };
        // Wall-clock time is confined to this envelope field: it is host
        // time for CI trend lines, never simulated time (KD001 keeps wall
        // clocks out of the simulation crates; the bench crate is exempt).
        let elapsed_ms = self.started.elapsed().as_millis();
        let data = format!(
            "{{\n\"jobs\": {},\n\"elapsed_ms\": {},\n\"backend\": \"{}\",\n\"rows\": {}\n}}\n",
            self.jobs,
            elapsed_ms,
            self.backend.name(),
            body.trim_end()
        );
        match std::fs::write(path, data) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("json write failed: {e}"),
        }
    }

    /// Tears the harness down: clears the ambient fault seed, resets the
    /// published worker count, and reports sanitizer violations.
    ///
    /// # Errors
    ///
    /// [`KindleError::Corrupted`] when the sanitizer recorded violations.
    pub fn finish(self) -> Result<()> {
        kindle_core::sim::set_thread_media_faults(None);
        kindle_core::sim::set_thread_legacy_maps(false);
        kindle_core::sim::set_thread_backend(None);
        parallel::set_thread_jobs(1);
        if let Some(log) = &self.log {
            let violations = log.take();
            if !violations.is_empty() {
                eprintln!("sanitizer: {} violation(s)", violations.len());
                for v in &violations {
                    eprintln!("  {v}");
                }
                return Err(KindleError::Corrupted("sanitizer recorded violations"));
            }
            eprintln!("sanitizer: clean");
        }
        Ok(())
    }
}

/// True if `--quick` was passed (CI-scale parameters instead of the
/// paper-scale defaults).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a rule line of width `w`.
pub fn rule(w: usize) {
    println!("{}", "-".repeat(w));
}

/// Formats milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Writes rows as CSV when `--csv <path>` was passed.
pub fn maybe_csv<R: kindle_core::experiments::CsvRow>(rows: &[R]) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        if let Some(path) = args.get(i + 1) {
            let data = kindle_core::experiments::to_csv(rows);
            match std::fs::write(path, data) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("csv write failed: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn harness_plain_is_inert() {
        let h = Harness::from_arg_list(&args(&["bin"]));
        assert!(!sanitize::installed());
        h.finish().unwrap();
    }

    #[test]
    fn harness_sanitize_installs_and_reports_clean() {
        let h = Harness::from_arg_list(&args(&["bin", "--sanitize"]));
        assert!(sanitize::installed());
        let m = Machine::new(MachineConfig::small()).unwrap();
        drop(m);
        h.finish().unwrap();
        assert!(!sanitize::installed(), "finish must uninstall the checker");
    }

    #[test]
    fn harness_faults_seed_arms_machines_until_finish() {
        let h = Harness::from_arg_list(&args(&["bin", "--faults", "42"]));
        let m = Machine::new(MachineConfig::small()).unwrap();
        assert_eq!(m.config().mem.faults.as_ref().map(|f| f.seed), Some(42));
        h.finish().unwrap();
        let clean = Machine::new(MachineConfig::small()).unwrap();
        assert!(clean.config().mem.faults.is_none(), "finish must clear the ambient seed");
    }

    #[test]
    fn harness_legacy_maps_arms_machines_until_finish() {
        let h = Harness::from_arg_list(&args(&["bin", "--legacy-maps"]));
        let m = Machine::new(MachineConfig::small()).unwrap();
        assert!(m.config().mem.legacy_maps, "flag must reach every machine built on this thread");
        h.finish().unwrap();
        let clean = Machine::new(MachineConfig::small()).unwrap();
        assert!(!clean.config().mem.legacy_maps, "finish must clear the ambient request");
    }

    #[test]
    fn harness_backend_arms_machines_until_finish() {
        let h = Harness::from_arg_list(&args(&["bin", "--backend", "numa"]));
        assert_eq!(h.backend(), mem::Backend::Numa);
        let m = Machine::new(MachineConfig::small()).unwrap();
        assert_eq!(
            m.config().mem.backend,
            Some(mem::Backend::Numa),
            "flag must reach every machine built on this thread"
        );
        h.finish().unwrap();
        let clean = Machine::new(MachineConfig::small()).unwrap();
        assert!(clean.config().mem.backend.is_none(), "finish must clear the ambient choice");

        // Without the flag: resolved default is pcm, nothing published.
        let h = Harness::from_arg_list(&args(&["bin"]));
        assert_eq!(h.backend(), mem::Backend::Pcm);
        let m = Machine::new(MachineConfig::small()).unwrap();
        assert!(m.config().mem.backend.is_none(), "unset default must not publish ambient state");
        h.finish().unwrap();
    }

    #[test]
    fn harness_rejects_unknown_backend_listing_registry() {
        let err = Harness::try_from_arg_list(&args(&["bin", "--backend", "flash"])).err().unwrap();
        assert!(err.contains("unknown backend"), "{err}");
        for name in ["pcm", "numa", "sttram", "cxl"] {
            assert!(err.contains(name), "error must list registered backend {name}: {err}");
        }
        assert!(Harness::try_from_arg_list(&args(&["bin", "--backend"])).is_err());
    }

    #[test]
    fn harness_rejects_unknown_flags() {
        let err = Harness::try_from_arg_list(&args(&["bin", "--quik"])).err().unwrap();
        assert!(err.contains("unknown flag: --quik"), "{err}");
        // Valid flags after the bad one must not mask the rejection.
        let err = Harness::try_from_arg_list(&args(&["bin", "--bogus", "--sanitize"]));
        assert!(err.is_err());
        assert!(!sanitize::installed(), "rejected command lines must not install anything");
    }

    #[test]
    fn harness_rejects_malformed_values() {
        assert!(Harness::try_from_arg_list(&args(&["bin", "--faults"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--faults", "pony"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--jobs"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--jobs", "0"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--csv"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--json"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--stuck"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--stuck", "many"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--plot"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--patrol"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--patrol", "0"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--patrol", "soon"])).is_err());
        assert!(Harness::try_from_arg_list(&args(&["bin", "--timing"])).is_err());
    }

    #[test]
    fn harness_timing_and_verify_replay_are_accessors() {
        let h = Harness::from_arg_list(&args(&["bin", "--timing", "T.json", "--verify-replay"]));
        assert_eq!(h.timing_path(), Some("T.json"));
        assert!(h.verify_replay());
        h.finish().unwrap();

        let h = Harness::from_arg_list(&args(&["bin"]));
        assert_eq!(h.timing_path(), None);
        assert!(!h.verify_replay());
        h.finish().unwrap();
    }

    #[test]
    fn harness_patrol_interval_is_an_accessor() {
        let h = Harness::from_arg_list(&args(&["bin", "--patrol", "250"]));
        assert_eq!(h.patrol_interval(), Some(Cycles::from_micros(250)));
        // Accessor only: no ambient state, machines stay patrol-free
        // unless the binary arms them.
        let m = Machine::new(MachineConfig::small()).unwrap();
        assert!(m.patrol.is_none());
        h.finish().unwrap();

        let h = Harness::from_arg_list(&args(&["bin"]));
        assert_eq!(h.patrol_interval(), None);
        h.finish().unwrap();
    }

    #[test]
    fn harness_stuck_folds_into_the_fault_model() {
        let h = Harness::from_arg_list(&args(&["bin", "--faults", "9", "--stuck", "512"]));
        assert_eq!(h.stuck(), Some(512));
        let m = Machine::new(MachineConfig::small()).unwrap();
        let f = m.config().mem.faults.clone().unwrap();
        assert_eq!(f.stuck_cells, 512);
        assert_eq!(f.correction_entries, STUCK_CORRECTION_ENTRIES);
        h.finish().unwrap();

        // Standalone --stuck is an accessor only: no ambient model armed.
        let h = Harness::from_arg_list(&args(&["bin", "--stuck", "16", "--plot", "p.svg"]));
        assert_eq!(h.stuck(), Some(16));
        assert_eq!(h.plot_path(), Some("p.svg"));
        let m = Machine::new(MachineConfig::small()).unwrap();
        assert!(m.config().mem.faults.is_none());
        h.finish().unwrap();
    }

    #[test]
    fn harness_publishes_and_resets_jobs() {
        let h = Harness::from_arg_list(&args(&["bin", "--jobs", "3"]));
        assert_eq!(h.jobs(), 3);
        assert_eq!(parallel::thread_jobs(), 3, "drivers must see the published count");
        h.finish().unwrap();
        assert_eq!(parallel::thread_jobs(), 1, "finish must reset to serial");
    }

    #[test]
    fn json_envelope_wraps_rows() {
        let dir = std::env::temp_dir().join("kindle-bench-envelope-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rows.json");
        let h = Harness::from_arg_list(&args(&[
            "bin",
            "--jobs",
            "2",
            "--json",
            path.to_str().unwrap(),
        ]));
        let rows =
            vec![experiments::Fig4aRow { size_mb: 64, rebuild_ms: 54.2, persistent_ms: 29.2 }];
        h.maybe_json(&rows);
        let data = std::fs::read_to_string(&path).unwrap();
        assert!(data.starts_with("{\n\"jobs\": 2,\n\"elapsed_ms\": "), "{data}");
        assert!(data.contains("\"backend\": \"pcm\""), "envelope must echo the backend: {data}");
        assert!(data.contains("\"rows\": ["), "{data}");
        assert!(data.contains("\"size_mib\": 64"), "{data}");
        assert!(data.trim_end().ends_with('}'), "{data}");
        h.finish().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(super::ms(12345.6), "12346");
        assert_eq!(super::ms(45.67), "45.7");
        assert_eq!(super::ms(1.2345), "1.234");
    }
}
