//! Benchmark-harness support: experiment re-exports and table formatting
//! shared by the `fig*`/`table*` binaries that regenerate the paper's
//! evaluation artifacts.

pub use kindle_core::*;

use kindle_core::types::sanitize::{self, Installed, InvariantChecker, ViolationLog};

/// Fault/sanitizer CLI harness shared by the `fig*`/`table*` binaries.
///
/// * `--sanitize` installs the cross-layer [`InvariantChecker`] for the
///   whole run; [`Harness::finish`] prints anything it caught and fails
///   the binary, so CI notices an experiment that corrupts state even
///   when its numbers still look plausible.
/// * `--faults <seed>` arms the deterministic NVM media-fault model
///   (wear-out, stuck cells, retry-then-retire) in every machine the
///   experiment builds on this thread — the figures can be regenerated
///   on degrading media without touching experiment code.
pub struct Harness {
    _guard: Option<Installed>,
    log: Option<ViolationLog>,
}

impl Harness {
    /// Parses `std::env::args()` and activates the requested machinery.
    ///
    /// # Panics
    ///
    /// Panics when `--faults` is passed without a `u64` seed.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        Self::from_arg_list(&args)
    }

    /// Testable core of [`Harness::from_args`].
    ///
    /// # Panics
    ///
    /// Panics when `--faults` is passed without a `u64` seed.
    #[must_use]
    pub fn from_arg_list(args: &[String]) -> Self {
        if let Some(i) = args.iter().position(|a| a == "--faults") {
            let seed = args
                .get(i + 1)
                .and_then(|s| s.parse::<u64>().ok())
                .expect("--faults requires a u64 seed");
            kindle_core::sim::set_thread_media_fault_seed(Some(seed));
        }
        let (guard, log) = if args.iter().any(|a| a == "--sanitize") {
            let checker = InvariantChecker::new();
            let log = checker.log();
            (Some(sanitize::install(Box::new(checker))), Some(log))
        } else {
            (None, None)
        };
        Harness { _guard: guard, log }
    }

    /// Tears the harness down: clears the ambient fault seed and reports
    /// sanitizer violations.
    ///
    /// # Errors
    ///
    /// [`KindleError::Corrupted`] when the sanitizer recorded violations.
    pub fn finish(self) -> Result<()> {
        kindle_core::sim::set_thread_media_fault_seed(None);
        if let Some(log) = &self.log {
            let violations = log.take();
            if !violations.is_empty() {
                eprintln!("sanitizer: {} violation(s)", violations.len());
                for v in &violations {
                    eprintln!("  {v}");
                }
                return Err(KindleError::Corrupted("sanitizer recorded violations"));
            }
            eprintln!("sanitizer: clean");
        }
        Ok(())
    }
}

/// True if `--quick` was passed (CI-scale parameters instead of the
/// paper-scale defaults).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a rule line of width `w`.
pub fn rule(w: usize) {
    println!("{}", "-".repeat(w));
}

/// Formats milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Writes rows as CSV when `--csv <path>` was passed.
pub fn maybe_csv<R: kindle_core::experiments::CsvRow>(rows: &[R]) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        if let Some(path) = args.get(i + 1) {
            let data = kindle_core::experiments::to_csv(rows);
            match std::fs::write(path, data) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("csv write failed: {e}"),
            }
        }
    }
}

/// Writes rows as a JSON array when `--json <path>` was passed — the
/// machine-readable twin of [`maybe_csv`], consumed by the CI bench-smoke
/// job's artifact upload.
pub fn maybe_json<R: kindle_core::experiments::CsvRow>(rows: &[R]) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--json") {
        if let Some(path) = args.get(i + 1) {
            let data = kindle_core::experiments::to_json(rows);
            match std::fs::write(path, data) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("json write failed: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn harness_plain_is_inert() {
        let h = Harness::from_arg_list(&args(&["bin"]));
        assert!(!sanitize::installed());
        h.finish().unwrap();
    }

    #[test]
    fn harness_sanitize_installs_and_reports_clean() {
        let h = Harness::from_arg_list(&args(&["bin", "--sanitize"]));
        assert!(sanitize::installed());
        let m = Machine::new(MachineConfig::small()).unwrap();
        drop(m);
        h.finish().unwrap();
        assert!(!sanitize::installed(), "finish must uninstall the checker");
    }

    #[test]
    fn harness_faults_seed_arms_machines_until_finish() {
        let h = Harness::from_arg_list(&args(&["bin", "--faults", "42"]));
        let m = Machine::new(MachineConfig::small()).unwrap();
        assert_eq!(m.config().mem.faults.as_ref().map(|f| f.seed), Some(42));
        h.finish().unwrap();
        let clean = Machine::new(MachineConfig::small()).unwrap();
        assert!(clean.config().mem.faults.is_none(), "finish must clear the ambient seed");
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(super::ms(12345.6), "12346");
        assert_eq!(super::ms(45.67), "45.7");
        assert_eq!(super::ms(1.2345), "1.234");
    }
}
