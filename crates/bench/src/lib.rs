//! Benchmark-harness support: experiment re-exports and table formatting
//! shared by the `fig*`/`table*` binaries that regenerate the paper's
//! evaluation artifacts.

pub use kindle_core::*;

/// True if `--quick` was passed (CI-scale parameters instead of the
/// paper-scale defaults).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Prints a rule line of width `w`.
pub fn rule(w: usize) {
    println!("{}", "-".repeat(w));
}

/// Formats milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Writes rows as CSV when `--csv <path>` was passed.
pub fn maybe_csv<R: kindle_core::experiments::CsvRow>(rows: &[R]) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        if let Some(path) = args.get(i + 1) {
            let data = kindle_core::experiments::to_csv(rows);
            match std::fs::write(path, data) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("csv write failed: {e}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn ms_formatting() {
        assert_eq!(super::ms(12345.6), "12346");
        assert_eq!(super::ms(45.67), "45.7");
        assert_eq!(super::ms(1.2345), "1.234");
    }
}
