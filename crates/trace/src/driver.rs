//! The tracing driver — the Pin-coordinator substitute.
//!
//! The paper's driver forks the application under Intel Pin, captures its
//! memory layout from `/proc/pid/maps` (SniP for thread stacks) and feeds
//! the trace to the image generator. Offline, this driver runs the
//! synthetic workload generator instead and produces the same artefacts:
//! a [`MemoryLayout`] and a [`TraceImage`].

use crate::image::TraceImage;
use crate::layout::MemoryLayout;
use crate::workloads::WorkloadKind;

/// The trace-capture driver.
#[derive(Clone, Copy, Debug)]
pub struct Driver {
    seed: u64,
}

impl Driver {
    /// Creates a driver with a fixed RNG seed (reproducible traces).
    pub fn new(seed: u64) -> Self {
        Driver { seed }
    }

    /// The seed in use.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// "Runs" `kind` for `ops` operations under the tracer, returning the
    /// captured layout and the generated disk image.
    pub fn trace(&self, kind: WorkloadKind, ops: u64) -> (MemoryLayout, TraceImage) {
        let layout = kind.layout();
        let records = kind.stream(ops, self.seed).collect();
        (layout.clone(), TraceImage::new(layout, records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_produces_consistent_artifacts() {
        let (layout, image) = Driver::new(1).trace(WorkloadKind::GapbsPr, 1234);
        assert_eq!(image.records().len(), 1234);
        assert_eq!(layout, *image.layout());
        crate::image::validate(&layout, image.records()).unwrap();
    }

    #[test]
    fn same_seed_same_trace() {
        let (_, a) = Driver::new(5).trace(WorkloadKind::YcsbMem, 100);
        let (_, b) = Driver::new(5).trace(WorkloadKind::YcsbMem, 100);
        assert_eq!(a, b);
    }
}
