//! A deterministic Zipf(s) sampler over `1..=n`.
//!
//! Uses a precomputed CDF with binary search: exact, O(log n) per sample,
//! and bit-for-bit reproducible across runs for a fixed seed — which the
//! whole evaluation pipeline depends on.

use kindle_types::rng::Rng64;

/// Zipf-distributed index sampler.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
    rng: Rng64,
}

impl Zipf {
    /// Creates a sampler over `1..=n` with exponent `s` and a fixed seed.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64, seed: u64) -> Self {
        assert!(n > 0, "zipf support must be non-empty");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be finite and >= 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf, rng: Rng64::new(seed) }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..n` (0 is the hottest).
    pub fn sample(&mut self) -> usize {
        let u = self.rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Zipf::new(1000, 0.99, 7);
        let mut b = Zipf::new(1000, 0.99, 7);
        let xs: Vec<_> = (0..100).map(|_| a.sample()).collect();
        let ys: Vec<_> = (0..100).map(|_| b.sample()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn skewed_towards_low_ranks() {
        let mut z = Zipf::new(10_000, 1.2, 1);
        let mut head = 0usize;
        let samples = 20_000;
        for _ in 0..samples {
            if z.sample() < 100 {
                head += 1;
            }
        }
        // With s = 1.2 the top 1% of ranks should draw well over a third
        // of the mass.
        assert!(head as f64 / samples as f64 > 0.35, "head mass {head}/{samples}");
    }

    #[test]
    fn uniform_when_s_zero() {
        let mut z = Zipf::new(100, 0.0, 3);
        let mut counts = vec![0usize; 100];
        for _ in 0..100_000 {
            counts[z.sample()] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(max / min < 1.5, "s=0 must be near-uniform (min {min}, max {max})");
    }

    #[test]
    fn samples_stay_in_range() {
        let mut z = Zipf::new(5, 2.0, 9);
        for _ in 0..1000 {
            assert!(z.sample() < 5);
        }
    }
}
