//! The trace record: `(period, offset, operation, size, area)`.

use kindle_types::AccessKind;

/// Index into the trace's area table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AreaId(pub u16);

/// One memory operation of the traced application, exactly the tuple the
/// paper's image generator emits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceRecord {
    /// Time of the access in the original execution (ns from start).
    pub period: u64,
    /// Byte offset within the named area.
    pub offset: u64,
    /// Read or write.
    pub op: AccessKind,
    /// Access size in bytes.
    pub size: u32,
    /// Which heap/stack area is accessed.
    pub area: AreaId,
}

impl TraceRecord {
    /// Serialized size in the disk image.
    pub const BYTES: usize = 24;

    /// Packs into the fixed on-disk layout.
    pub fn to_bytes(&self) -> [u8; Self::BYTES] {
        let mut b = [0u8; Self::BYTES];
        b[0..8].copy_from_slice(&self.period.to_le_bytes());
        b[8..16].copy_from_slice(&self.offset.to_le_bytes());
        b[16..20].copy_from_slice(&self.size.to_le_bytes());
        b[20] = matches!(self.op, AccessKind::Write) as u8;
        b[21..23].copy_from_slice(&self.area.0.to_le_bytes());
        b
    }

    /// Unpacks from the on-disk layout.
    pub fn from_bytes(b: &[u8; Self::BYTES]) -> Self {
        TraceRecord {
            period: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            offset: u64::from_le_bytes(b[8..16].try_into().expect("8 bytes")),
            size: u32::from_le_bytes(b[16..20].try_into().expect("4 bytes")),
            op: if b[20] == 1 { AccessKind::Write } else { AccessKind::Read },
            area: AreaId(u16::from_le_bytes(b[21..23].try_into().expect("2 bytes"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_round_trip() {
        let r = TraceRecord {
            period: 123_456_789,
            offset: 0xdead_beef,
            op: AccessKind::Write,
            size: 64,
            area: AreaId(3),
        };
        assert_eq!(TraceRecord::from_bytes(&r.to_bytes()), r);
        let r2 = TraceRecord { op: AccessKind::Read, ..r };
        assert_eq!(TraceRecord::from_bytes(&r2.to_bytes()), r2);
    }
}
