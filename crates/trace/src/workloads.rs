//! Synthetic workload generators shaped after the paper's Table II.
//!
//! | Benchmark  | Total ops  | read % | write % |
//! |------------|------------|--------|---------|
//! | Gapbs_pr   | 10,000,000 | 77     | 23      |
//! | G500_sssp  | 10,000,000 | 68     | 32      |
//! | Ycsb_mem   | 10,000,000 | 71     | 29      |
//!
//! The locality profiles are chosen per application:
//!
//! * **Gapbs_pr** (PageRank): a small, highly skewed hot set of vertex
//!   scores (most of it LLC-resident) plus a large, lightly-touched edge
//!   array — few pages ever exceed an HSCC fetch threshold.
//! * **G500_sssp**: frontier expansion touching a wide, moderately skewed
//!   distance/adjacency footprint — many warm pages, heavy migration
//!   traffic at low thresholds.
//! * **Ycsb_mem**: Zipfian key popularity over a 1 KiB-record store with a
//!   drifting hot band — counts fall steeply with threshold.

use kindle_types::rng::Rng64;

use kindle_types::{AccessKind, PAGE_SIZE};

use crate::layout::{AreaKind, MemoryLayout};
use crate::record::{AreaId, TraceRecord};
use crate::zipf::Zipf;

/// Mean inter-op gap stamped into the `period` field (ns).
const PERIOD_GAP_NS: u64 = 30;

/// Which benchmark to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum WorkloadKind {
    /// GAP benchmark suite PageRank.
    GapbsPr,
    /// Graph500 single-source shortest path.
    G500Sssp,
    /// YCSB in-memory key-value mix.
    YcsbMem,
}

impl WorkloadKind {
    /// All benchmarks, in Table II order.
    pub const ALL: [WorkloadKind; 3] =
        [WorkloadKind::GapbsPr, WorkloadKind::G500Sssp, WorkloadKind::YcsbMem];

    /// The Table II row for this benchmark.
    pub fn spec(self) -> WorkloadSpec {
        match self {
            WorkloadKind::GapbsPr => WorkloadSpec {
                name: "Gapbs_pr",
                total_ops: 10_000_000,
                read_pct: 77,
                write_pct: 23,
            },
            WorkloadKind::G500Sssp => WorkloadSpec {
                name: "G500_sssp",
                total_ops: 10_000_000,
                read_pct: 68,
                write_pct: 32,
            },
            WorkloadKind::YcsbMem => WorkloadSpec {
                name: "Ycsb_mem",
                total_ops: 10_000_000,
                read_pct: 71,
                write_pct: 29,
            },
        }
    }

    /// Memory layout of the benchmark's areas (all heap areas NVM-tagged,
    /// as in the paper's hybrid-memory studies).
    pub fn layout(self) -> MemoryLayout {
        let mut l = MemoryLayout::new();
        let p = PAGE_SIZE as u64;
        match self {
            WorkloadKind::GapbsPr => {
                l.add("pr_scores", AreaKind::Heap, 512 * p, true); // 2 MiB
                l.add("graph_edges", AreaKind::Heap, 131_072 * p, true); // 512 MiB
                l.add("stack.0", AreaKind::Stack, 16 * p, false);
            }
            WorkloadKind::G500Sssp => {
                l.add("dist", AreaKind::Heap, 1024 * p, true); // 4 MiB
                l.add("adj", AreaKind::Heap, 65_536 * p, true); // 256 MiB
                l.add("frontier", AreaKind::Heap, 1024 * p, true); // 4 MiB
                l.add("stack.0", AreaKind::Stack, 16 * p, false);
            }
            WorkloadKind::YcsbMem => {
                l.add("kv_store", AreaKind::Heap, 131_072 * p, true); // 512 MiB
                l.add("stack.0", AreaKind::Stack, 16 * p, false);
            }
        }
        l
    }

    /// Streaming generator of `ops` records with a fixed seed.
    pub fn stream(self, ops: u64, seed: u64) -> OpStream {
        OpStream::new(self, ops, seed)
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.spec().name)
    }
}

impl std::str::FromStr for WorkloadKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "gapbs_pr" | "gapbs" | "pr" => Ok(WorkloadKind::GapbsPr),
            "g500_sssp" | "g500" | "sssp" => Ok(WorkloadKind::G500Sssp),
            "ycsb_mem" | "ycsb" => Ok(WorkloadKind::YcsbMem),
            other => Err(format!("unknown workload: {other}")),
        }
    }
}

/// A Table II row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkloadSpec {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Operations in the full trace.
    pub total_ops: u64,
    /// Percentage of reads.
    pub read_pct: u32,
    /// Percentage of writes.
    pub write_pct: u32,
}

/// Streaming iterator over a benchmark's trace records.
#[derive(Clone, Debug)]
pub struct OpStream {
    kind: WorkloadKind,
    i: u64,
    ops: u64,
    rng: Rng64,
    /// Hot-set sampler (scores / dist / kv records).
    hot: Zipf,
    /// Secondary sampler (edge pages / adjacency pages).
    wide: Zipf,
    /// Sequential cursor (edge streaming / frontier scans).
    cursor: u64,
    /// YCSB drifting hot-band origin (records).
    band: u64,
}

impl OpStream {
    fn new(kind: WorkloadKind, ops: u64, seed: u64) -> Self {
        let (hot, wide) = match kind {
            // 1024 score pages, strongly skewed; 131072 edge pages, skewed
            // by vertex degree.
            WorkloadKind::GapbsPr => {
                (Zipf::new(128, 1.0, seed ^ 0x5151), Zipf::new(131_072, 0.0, seed ^ 0xa3a3))
            }
            // 8192 dist pages moderately skewed; 65536 adjacency pages,
            // lightly skewed (frontiers sweep widely).
            WorkloadKind::G500Sssp => {
                (Zipf::new(128, 0.0, seed ^ 0x5151), Zipf::new(65_536, 0.0, seed ^ 0xa3a3))
            }
            // 131072 records (4 per page), classic YCSB zipfian.
            WorkloadKind::YcsbMem => {
                (Zipf::new(192, 0.4, seed ^ 0x5151), Zipf::new(131_072, 0.0, seed ^ 0xa3a3))
            }
        };
        OpStream { kind, i: 0, ops, rng: Rng64::new(seed), hot, wide, cursor: 0, band: 0 }
    }

    /// Remaining records.
    pub fn remaining(&self) -> u64 {
        self.ops - self.i
    }

    fn rec(&self, offset: u64, op: AccessKind, size: u32, area: u16) -> TraceRecord {
        TraceRecord { period: self.i * PERIOD_GAP_NS, offset, op, size, area: AreaId(area) }
    }

    fn next_gapbs(&mut self) -> TraceRecord {
        let p = PAGE_SIZE as u64;
        let roll = self.rng.gen_below(1000);
        if roll < 520 {
            // Edge read over the big array (near-uniform: frontier sweeps).
            let page = self.wide.sample() as u64;
            let off = page * p + self.rng.gen_below(512) * 8;
            self.rec(off, AccessKind::Read, 8, 1)
        } else if roll < 740 {
            // Hot score read (high-degree vertices).
            let page = self.hot.sample() as u64;
            let off = page * p + self.rng.gen_below(512) * 8;
            self.rec(off, AccessKind::Read, 8, 0)
        } else if roll < 743 {
            // Cold score read over the whole score array.
            let page = self.rng.gen_below(512);
            let off = page * p + self.rng.gen_below(512) * 8;
            self.rec(off, AccessKind::Read, 8, 0)
        } else if roll < 763 {
            // Stack read.
            let off = self.rng.gen_below(16 * p / 8) * 8;
            self.rec(off, AccessKind::Read, 8, 2)
        } else if roll < 765 {
            // Cold score update.
            let page = self.rng.gen_below(512);
            let off = page * p + self.rng.gen_below(512) * 8;
            self.rec(off, AccessKind::Write, 8, 0)
        } else {
            // Hot score update.
            let page = self.hot.sample() as u64;
            let off = page * p + self.rng.gen_below(512) * 8;
            self.rec(off, AccessKind::Write, 8, 0)
        }
    }

    fn next_g500(&mut self) -> TraceRecord {
        let p = PAGE_SIZE as u64;
        // The active frontier advances through the adjacency array every
        // ~300k ops; its pages are warm for a few migration intervals,
        // driving the heavy Th-5 migration traffic the paper reports.
        let frontier_base = (self.i / 300_000) * 2048 % 65_536;
        let roll = self.rng.gen_below(100);
        if roll < 18 {
            // Frontier-adjacent read (warm rotating band of 2048 pages).
            let page = frontier_base + self.rng.gen_below(2048);
            let off = page * p + self.rng.gen_below(512) * 8;
            self.rec(off, AccessKind::Read, 8, 1)
        } else if roll < 40 {
            // Cold adjacency read across the whole array.
            let page = self.wide.sample() as u64;
            let off = page * p + self.rng.gen_below(512) * 8;
            self.rec(off, AccessKind::Read, 8, 1)
        } else if roll < 62 {
            // Hot distance read.
            let page = self.hot.sample() as u64;
            let off = page * p + self.rng.gen_below(512) * 8;
            self.rec(off, AccessKind::Read, 8, 0)
        } else if roll < 68 {
            // Frontier sequential scan read.
            self.cursor = (self.cursor + 8) % (1024 * p);
            self.rec(self.cursor, AccessKind::Read, 8, 2)
        } else if roll < 94 {
            // Distance relaxation write (26%).
            let page = self.hot.sample() as u64;
            let off = page * p + self.rng.gen_below(512) * 8;
            self.rec(off, AccessKind::Write, 8, 0)
        } else {
            // Frontier append write (6%).
            self.cursor = (self.cursor + 8) % (1024 * p);
            self.rec(self.cursor, AccessKind::Write, 8, 2)
        }
    }

    fn next_ycsb(&mut self) -> TraceRecord {
        // Popularity tiers over the 32768-page store (131072 x 1 KiB
        // records, 4 per page):
        //   ultra-hot: 256 pages, counts far above every threshold;
        //   mid band : 64 pages drifting slowly (clears Th-25, not Th-50);
        //   warm band: 1024 pages drifting faster (clears Th-5 only);
        //   cold tail: everything else (thrashes the LLC, never migrates).
        if self.i % 500_000 == 0 {
            self.band = self.rng.gen_below(524_288);
        }
        let mid_base = (self.i / 1_000_000) * 384 % 524_288;
        let roll = self.rng.gen_below(1000);
        let record = if roll < 250 {
            // Ultra-hot tier (zipf over 1024 hottest records).
            self.hot.sample() as u64 * 4 + self.rng.gen_below(4)
        } else if roll < 280 {
            // Mid tier: 384 records (96 pages), drifting slowly.
            mid_base + self.rng.gen_below(384)
        } else if roll < 480 {
            // Warm drifting band: 4096 records (1024 pages).
            (self.band + self.rng.gen_below(4096)) % 524_288
        } else if roll < 990 {
            // Cold uniform scan tail over the whole store.
            self.wide.sample() as u64 * 4 + self.rng.gen_below(4)
        } else {
            // Stack activity (1%).
            let soff = self.rng.gen_below(16 * PAGE_SIZE as u64 / 8) * 8;
            let op =
                if self.rng.gen_below(100) < 71 { AccessKind::Read } else { AccessKind::Write };
            return self.rec(soff, op, 8, 1);
        };
        // The replayed access covers 128 B of the record (two lines).
        let off = (record % 524_288) * 1024 + self.rng.gen_below(8) * 128;
        let op = if self.rng.gen_below(100) < 71 { AccessKind::Read } else { AccessKind::Write };
        self.rec(off, op, 128, 0)
    }
}

impl Iterator for OpStream {
    type Item = TraceRecord;

    fn next(&mut self) -> Option<TraceRecord> {
        if self.i >= self.ops {
            return None;
        }
        let r = match self.kind {
            WorkloadKind::GapbsPr => self.next_gapbs(),
            WorkloadKind::G500Sssp => self.next_g500(),
            WorkloadKind::YcsbMem => self.next_ycsb(),
        };
        self.i += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let r = self.remaining() as usize;
        (r, Some(r))
    }
}

impl ExactSizeIterator for OpStream {}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_fraction(kind: WorkloadKind, n: u64) -> f64 {
        let reads = kind.stream(n, 1).filter(|r| r.op == AccessKind::Read).count();
        reads as f64 / n as f64
    }

    #[test]
    fn table_ii_specs() {
        for kind in WorkloadKind::ALL {
            let s = kind.spec();
            assert_eq!(s.total_ops, 10_000_000);
            assert_eq!(s.read_pct + s.write_pct, 100);
        }
        assert_eq!(WorkloadKind::GapbsPr.spec().read_pct, 77);
        assert_eq!(WorkloadKind::G500Sssp.spec().read_pct, 68);
        assert_eq!(WorkloadKind::YcsbMem.spec().read_pct, 71);
    }

    #[test]
    fn generated_mix_matches_spec() {
        for kind in WorkloadKind::ALL {
            let want = kind.spec().read_pct as f64 / 100.0;
            let got = read_fraction(kind, 100_000);
            assert!(
                (got - want).abs() < 0.02,
                "{kind}: generated {got:.3} reads vs spec {want:.2}"
            );
        }
    }

    #[test]
    fn offsets_stay_inside_areas() {
        for kind in WorkloadKind::ALL {
            let layout = kind.layout();
            for r in kind.stream(50_000, 2) {
                let area = layout.area(r.area);
                assert!(
                    r.offset + r.size as u64 <= area.size,
                    "{kind}: offset {:#x}+{} escapes area {} ({} bytes)",
                    r.offset,
                    r.size,
                    area.name,
                    area.size
                );
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<_> = WorkloadKind::YcsbMem.stream(1000, 7).collect();
        let b: Vec<_> = WorkloadKind::YcsbMem.stream(1000, 7).collect();
        let c: Vec<_> = WorkloadKind::YcsbMem.stream(1000, 8).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn periods_are_monotonic() {
        let mut last = 0;
        for r in WorkloadKind::GapbsPr.stream(1000, 3) {
            assert!(r.period >= last);
            last = r.period;
        }
    }

    #[test]
    fn gapbs_hot_set_is_concentrated() {
        use std::collections::HashMap;
        let mut per_page: HashMap<(u16, u64), u64> = HashMap::new();
        for r in WorkloadKind::GapbsPr.stream(200_000, 5) {
            *per_page.entry((r.area.0, r.offset / PAGE_SIZE as u64)).or_default() += 1;
        }
        let mut counts: Vec<u64> = per_page.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        let top100: u64 = counts.iter().take(100).sum();
        assert!(
            top100 as f64 / total as f64 > 0.25,
            "top-100 pages should dominate: {top100}/{total}"
        );
    }

    #[test]
    fn exact_size_iterator() {
        let mut s = WorkloadKind::G500Sssp.stream(10, 1);
        assert_eq!(s.len(), 10);
        s.next();
        assert_eq!(s.len(), 9);
    }
}
