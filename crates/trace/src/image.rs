//! The disk image consumed by the simulation component.
//!
//! Mirrors the paper's image-generator output: the area table followed by
//! the packed `(period, offset, operation, size, area)` records.

use kindle_types::{KindleError, Result};

use crate::layout::{Area, AreaKind, MemoryLayout};
use crate::record::{AreaId, TraceRecord};

const MAGIC: u64 = 0x4b49_4e44_4c45_0001; // "KINDLE" v1

/// Little-endian reader over a byte slice; every read is bounds-checked so
/// truncated images surface as `None` rather than a panic.
struct Cursor<'a> {
    data: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Cursor { data }
    }

    fn remaining(&self) -> usize {
        self.data.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.data.len() < n {
            return None;
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Some(head)
    }

    fn get_u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    fn get_u16_le(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }

    fn get_u32_le(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn get_u64_le(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

/// A fully materialised trace: layout plus records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceImage {
    layout: MemoryLayout,
    records: Vec<TraceRecord>,
}

impl TraceImage {
    /// Builds an image from parts.
    pub fn new(layout: MemoryLayout, records: Vec<TraceRecord>) -> Self {
        TraceImage { layout, records }
    }

    /// The captured memory layout.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// The record stream.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Serialises into the on-disk format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.records.len() * TraceRecord::BYTES);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&(self.layout.areas().len() as u32).to_le_bytes());
        buf.extend_from_slice(&(self.records.len() as u64).to_le_bytes());
        for a in self.layout.areas() {
            buf.extend_from_slice(&(a.name.len() as u16).to_le_bytes());
            buf.extend_from_slice(a.name.as_bytes());
            buf.push(matches!(a.kind, AreaKind::Stack) as u8);
            buf.extend_from_slice(&a.size.to_le_bytes());
            buf.push(a.nvm as u8);
        }
        for r in &self.records {
            buf.extend_from_slice(&r.to_bytes());
        }
        buf
    }

    /// Deserialises from the on-disk format.
    ///
    /// # Errors
    ///
    /// [`KindleError::Corrupted`] on bad magic or truncated input.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        let corrupt = || KindleError::Corrupted("trace image");
        let mut cur = Cursor::new(data);
        if cur.remaining() < 20 || cur.get_u64_le() != Some(MAGIC) {
            return Err(corrupt());
        }
        let areas = cur.get_u32_le().ok_or_else(corrupt)? as usize;
        let records = cur.get_u64_le().ok_or_else(corrupt)? as usize;
        let mut layout = MemoryLayout::new();
        for _ in 0..areas {
            let name_len = cur.get_u16_le().ok_or_else(corrupt)? as usize;
            if cur.remaining() < name_len + 10 {
                return Err(corrupt());
            }
            let name_bytes = cur.take(name_len).ok_or_else(corrupt)?;
            let name = std::str::from_utf8(name_bytes).map_err(|_| corrupt())?.to_string();
            let kind = if cur.get_u8().ok_or_else(corrupt)? == 1 {
                AreaKind::Stack
            } else {
                AreaKind::Heap
            };
            let size = cur.get_u64_le().ok_or_else(corrupt)?;
            let nvm = cur.get_u8().ok_or_else(corrupt)? == 1;
            layout.add(&name, kind, size, nvm);
        }
        if cur.remaining() < records * TraceRecord::BYTES {
            return Err(corrupt());
        }
        let mut recs = Vec::with_capacity(records);
        for _ in 0..records {
            let raw: [u8; TraceRecord::BYTES] = cur
                .take(TraceRecord::BYTES)
                .ok_or_else(corrupt)?
                .try_into()
                .map_err(|_| corrupt())?;
            let r = TraceRecord::from_bytes(&raw);
            if r.area.0 as usize >= layout.areas().len() {
                return Err(corrupt());
            }
            recs.push(r);
        }
        Ok(TraceImage { layout, records: recs })
    }

    /// Per-area operation counts (for Table II-style summaries).
    pub fn area_op_counts(&self) -> Vec<(Area, u64)> {
        let mut counts = vec![0u64; self.layout.areas().len()];
        for r in &self.records {
            counts[r.area.0 as usize] += 1;
        }
        self.layout.areas().iter().cloned().zip(counts).collect()
    }
}

/// Convenience: record referencing area ids beyond `layout` is invalid.
pub fn validate(layout: &MemoryLayout, records: &[TraceRecord]) -> Result<()> {
    for r in records {
        if r.area.0 as usize >= layout.areas().len() {
            return Err(KindleError::Corrupted("record references unknown area"));
        }
        let area = layout.area(AreaId(r.area.0));
        if r.offset + r.size as u64 > area.size {
            return Err(KindleError::Corrupted("record escapes its area"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadKind;

    #[test]
    fn serialize_round_trip() {
        let kind = WorkloadKind::GapbsPr;
        let img = TraceImage::new(kind.layout(), kind.stream(5000, 11).collect());
        let bytes = img.to_bytes();
        let back = TraceImage::from_bytes(&bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceImage::from_bytes(&[0u8; 32]).unwrap_err();
        assert_eq!(err, KindleError::Corrupted("trace image"));
    }

    #[test]
    fn truncated_rejected() {
        let kind = WorkloadKind::YcsbMem;
        let img = TraceImage::new(kind.layout(), kind.stream(100, 1).collect());
        let bytes = img.to_bytes();
        assert!(TraceImage::from_bytes(&bytes[..bytes.len() - 5]).is_err());
    }

    #[test]
    fn validation_catches_escapes() {
        let kind = WorkloadKind::YcsbMem;
        let layout = kind.layout();
        let mut records: Vec<TraceRecord> = kind.stream(10, 1).collect();
        validate(&layout, &records).unwrap();
        records[0].offset = layout.area(AreaId(0)).size;
        assert!(validate(&layout, &records).is_err());
    }

    #[test]
    fn area_op_counts_sum_to_total() {
        let kind = WorkloadKind::G500Sssp;
        let img = TraceImage::new(kind.layout(), kind.stream(2000, 4).collect());
        let total: u64 = img.area_op_counts().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 2000);
    }
}
