//! The disk image consumed by the simulation component.
//!
//! Mirrors the paper's image-generator output: the area table followed by
//! the packed `(period, offset, operation, size, area)` records.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use kindle_types::{KindleError, Result};

use crate::layout::{Area, AreaKind, MemoryLayout};
use crate::record::{AreaId, TraceRecord};

const MAGIC: u64 = 0x4b49_4e44_4c45_0001; // "KINDLE" v1

/// A fully materialised trace: layout plus records.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceImage {
    layout: MemoryLayout,
    records: Vec<TraceRecord>,
}

impl TraceImage {
    /// Builds an image from parts.
    pub fn new(layout: MemoryLayout, records: Vec<TraceRecord>) -> Self {
        TraceImage { layout, records }
    }

    /// The captured memory layout.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// The record stream.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Serialises into the on-disk format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64 + self.records.len() * TraceRecord::BYTES);
        buf.put_u64_le(MAGIC);
        buf.put_u32_le(self.layout.areas().len() as u32);
        buf.put_u64_le(self.records.len() as u64);
        for a in self.layout.areas() {
            buf.put_u16_le(a.name.len() as u16);
            buf.put_slice(a.name.as_bytes());
            buf.put_u8(matches!(a.kind, AreaKind::Stack) as u8);
            buf.put_u64_le(a.size);
            buf.put_u8(a.nvm as u8);
        }
        for r in &self.records {
            buf.put_slice(&r.to_bytes());
        }
        buf.freeze()
    }

    /// Deserialises from the on-disk format.
    ///
    /// # Errors
    ///
    /// [`KindleError::Corrupted`] on bad magic or truncated input.
    pub fn from_bytes(mut data: Bytes) -> Result<Self> {
        let corrupt = || KindleError::Corrupted("trace image");
        if data.remaining() < 20 || data.get_u64_le() != MAGIC {
            return Err(corrupt());
        }
        let areas = data.get_u32_le() as usize;
        let records = data.get_u64_le() as usize;
        let mut layout = MemoryLayout::new();
        for _ in 0..areas {
            if data.remaining() < 2 {
                return Err(corrupt());
            }
            let name_len = data.get_u16_le() as usize;
            if data.remaining() < name_len + 10 {
                return Err(corrupt());
            }
            let name_bytes = data.copy_to_bytes(name_len);
            let name =
                std::str::from_utf8(&name_bytes).map_err(|_| corrupt())?.to_string();
            let kind = if data.get_u8() == 1 { AreaKind::Stack } else { AreaKind::Heap };
            let size = data.get_u64_le();
            let nvm = data.get_u8() == 1;
            layout.add(&name, kind, size, nvm);
        }
        if data.remaining() < records * TraceRecord::BYTES {
            return Err(corrupt());
        }
        let mut recs = Vec::with_capacity(records);
        for _ in 0..records {
            let mut raw = [0u8; TraceRecord::BYTES];
            data.copy_to_slice(&mut raw);
            let r = TraceRecord::from_bytes(&raw);
            if r.area.0 as usize >= layout.areas().len() {
                return Err(corrupt());
            }
            recs.push(r);
        }
        Ok(TraceImage { layout, records: recs })
    }

    /// Per-area operation counts (for Table II-style summaries).
    pub fn area_op_counts(&self) -> Vec<(Area, u64)> {
        let mut counts = vec![0u64; self.layout.areas().len()];
        for r in &self.records {
            counts[r.area.0 as usize] += 1;
        }
        self.layout
            .areas()
            .iter()
            .cloned()
            .zip(counts)
            .collect()
    }
}

/// Convenience: record referencing area ids beyond `layout` is invalid.
pub fn validate(layout: &MemoryLayout, records: &[TraceRecord]) -> Result<()> {
    for r in records {
        if r.area.0 as usize >= layout.areas().len() {
            return Err(KindleError::Corrupted("record references unknown area"));
        }
        let area = layout.area(AreaId(r.area.0));
        if r.offset + r.size as u64 > area.size {
            return Err(KindleError::Corrupted("record escapes its area"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::WorkloadKind;

    #[test]
    fn serialize_round_trip() {
        let kind = WorkloadKind::GapbsPr;
        let img = TraceImage::new(kind.layout(), kind.stream(5000, 11).collect());
        let bytes = img.to_bytes();
        let back = TraceImage::from_bytes(bytes).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceImage::from_bytes(Bytes::from_static(&[0u8; 32])).unwrap_err();
        assert_eq!(err, KindleError::Corrupted("trace image"));
    }

    #[test]
    fn truncated_rejected() {
        let kind = WorkloadKind::YcsbMem;
        let img = TraceImage::new(kind.layout(), kind.stream(100, 1).collect());
        let bytes = img.to_bytes();
        let cut = bytes.slice(0..bytes.len() - 5);
        assert!(TraceImage::from_bytes(cut).is_err());
    }

    #[test]
    fn validation_catches_escapes() {
        let kind = WorkloadKind::YcsbMem;
        let layout = kind.layout();
        let mut records: Vec<TraceRecord> = kind.stream(10, 1).collect();
        validate(&layout, &records).unwrap();
        records[0].offset = layout.area(AreaId(0)).size;
        assert!(validate(&layout, &records).is_err());
    }

    #[test]
    fn area_op_counts_sum_to_total() {
        let kind = WorkloadKind::G500Sssp;
        let img = TraceImage::new(kind.layout(), kind.stream(2000, 4).collect());
        let total: u64 = img.area_op_counts().iter().map(|(_, c)| c).sum();
        assert_eq!(total, 2000);
    }
}
