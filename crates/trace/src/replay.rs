//! The generated "template program" — the code-generator substitute.
//!
//! The paper's code generator emits gemOS C code that mmaps areas matching
//! the traced application and replays `(period, offset, operation, size,
//! area)` tuples from the disk image. Here the template program is a data
//! structure the simulator interprets: the area table plus a record source
//! (a materialised image, or a synthetic stream re-generated on the fly to
//! avoid holding 10M records in host memory).

use crate::image::TraceImage;
use crate::layout::MemoryLayout;
use crate::record::TraceRecord;
use crate::workloads::WorkloadKind;

enum RecordSource {
    Image(TraceImage),
    Synthetic { kind: WorkloadKind, ops: u64, seed: u64 },
}

/// The replayable program handed to the simulation component.
pub struct ReplayProgram {
    layout: MemoryLayout,
    source: RecordSource,
}

impl ReplayProgram {
    /// Wraps a materialised trace image.
    pub fn from_image(image: TraceImage) -> Self {
        ReplayProgram { layout: image.layout().clone(), source: RecordSource::Image(image) }
    }

    /// Streams a synthetic benchmark without materialising the records.
    pub fn synthetic(kind: WorkloadKind, ops: u64, seed: u64) -> Self {
        ReplayProgram { layout: kind.layout(), source: RecordSource::Synthetic { kind, ops, seed } }
    }

    /// The areas the template program mmaps before replaying.
    pub fn layout(&self) -> &MemoryLayout {
        &self.layout
    }

    /// Total records the replay will issue.
    pub fn len(&self) -> u64 {
        match &self.source {
            RecordSource::Image(img) => img.records().len() as u64,
            RecordSource::Synthetic { ops, .. } => *ops,
        }
    }

    /// True if the program replays nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the records in order.
    pub fn records(&self) -> Box<dyn Iterator<Item = TraceRecord> + '_> {
        match &self.source {
            RecordSource::Image(img) => Box::new(img.records().iter().copied()),
            RecordSource::Synthetic { kind, ops, seed } => Box::new(kind.stream(*ops, *seed)),
        }
    }
}

impl std::fmt::Debug for ReplayProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let src = match &self.source {
            RecordSource::Image(_) => "image".to_string(),
            RecordSource::Synthetic { kind, .. } => format!("synthetic:{kind}"),
        };
        f.debug_struct("ReplayProgram")
            .field("areas", &self.layout.areas().len())
            .field("records", &self.len())
            .field("source", &src)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Driver;

    #[test]
    fn image_and_synthetic_agree() {
        let (_, image) = Driver::new(9).trace(WorkloadKind::G500Sssp, 500);
        let a = ReplayProgram::from_image(image);
        let b = ReplayProgram::synthetic(WorkloadKind::G500Sssp, 500, 9);
        let ra: Vec<_> = a.records().collect();
        let rb: Vec<_> = b.records().collect();
        assert_eq!(ra, rb);
        assert_eq!(a.len(), 500);
        assert!(!a.is_empty());
    }

    #[test]
    fn records_can_be_iterated_twice() {
        let p = ReplayProgram::synthetic(WorkloadKind::YcsbMem, 100, 1);
        assert_eq!(p.records().count(), 100);
        assert_eq!(p.records().count(), 100, "stream re-generates deterministically");
    }
}
