//! The virtual-memory layout captured alongside the trace.
//!
//! Stands in for reading `/proc/pid/maps` (and SniP for per-thread stacks):
//! every heap/stack area the application touches is named here, and the
//! image generator attributes each traced access to one area.

use kindle_types::{VirtAddr, PAGE_SIZE};

use crate::record::AreaId;

/// What kind of area this is in the original process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AreaKind {
    /// Heap allocation (malloc arena, mmap'd data).
    Heap,
    /// A thread stack (captured via the SniP-analog path).
    Stack,
}

/// One named memory area.
#[derive(Clone, Debug, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Area {
    /// Table index.
    pub id: AreaId,
    /// Human-readable name ("vertex_scores", "kv_store", "stack.0"...).
    pub name: String,
    /// Heap or stack.
    pub kind: AreaKind,
    /// Size in bytes (page aligned).
    pub size: u64,
    /// Whether the replay should place this area in NVM (`MAP_NVM`).
    pub nvm: bool,
}

impl Area {
    /// Pages covered by the area.
    pub fn pages(&self) -> u64 {
        self.size / PAGE_SIZE as u64
    }
}

/// The ordered area table of a trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemoryLayout {
    areas: Vec<Area>,
}

impl MemoryLayout {
    /// Empty layout.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an area, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a positive multiple of the page size.
    pub fn add(&mut self, name: &str, kind: AreaKind, size: u64, nvm: bool) -> AreaId {
        assert!(size > 0 && size % PAGE_SIZE as u64 == 0, "area size must be whole pages");
        let id = AreaId(self.areas.len() as u16);
        self.areas.push(Area { id, name: name.to_string(), kind, size, nvm });
        id
    }

    /// All areas in id order.
    pub fn areas(&self) -> &[Area] {
        &self.areas
    }

    /// Area by id.
    ///
    /// # Panics
    ///
    /// Panics on an unknown id.
    pub fn area(&self, id: AreaId) -> &Area {
        &self.areas[id.0 as usize]
    }

    /// Total bytes across all areas.
    pub fn total_bytes(&self) -> u64 {
        self.areas.iter().map(|a| a.size).sum()
    }

    /// Attributes a virtual address to an area given the per-area base
    /// addresses chosen at replay time — the image-generator step of
    /// labelling each access with an area name.
    pub fn classify(&self, bases: &[VirtAddr], va: VirtAddr) -> Option<(AreaId, u64)> {
        for (i, area) in self.areas.iter().enumerate() {
            let base = bases.get(i)?;
            if va >= *base && va < *base + area.size {
                return Some((area.id, va - *base));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query() {
        let mut l = MemoryLayout::new();
        let heap = l.add("kv_store", AreaKind::Heap, 64 * PAGE_SIZE as u64, true);
        let stack = l.add("stack.0", AreaKind::Stack, 4 * PAGE_SIZE as u64, false);
        assert_eq!(l.areas().len(), 2);
        assert_eq!(l.area(heap).pages(), 64);
        assert!(l.area(heap).nvm);
        assert!(!l.area(stack).nvm);
        assert_eq!(l.total_bytes(), 68 * PAGE_SIZE as u64);
    }

    #[test]
    fn classify_attributes_accesses() {
        let mut l = MemoryLayout::new();
        let a = l.add("a", AreaKind::Heap, 2 * PAGE_SIZE as u64, true);
        let b = l.add("b", AreaKind::Heap, PAGE_SIZE as u64, false);
        let bases = vec![VirtAddr::new(0x10000), VirtAddr::new(0x40000)];
        assert_eq!(l.classify(&bases, VirtAddr::new(0x10010)), Some((a, 0x10)));
        assert_eq!(l.classify(&bases, VirtAddr::new(0x40fff)), Some((b, 0xfff)));
        assert_eq!(l.classify(&bases, VirtAddr::new(0x9000)), None);
    }

    #[test]
    #[should_panic(expected = "whole pages")]
    fn rejects_unaligned_area() {
        MemoryLayout::new().add("x", AreaKind::Heap, 100, false);
    }
}
