//! `trace_gen` — the preparation component as a standalone tool.
//!
//! Mirrors the paper's scripted preparation flow: generate a benchmark's
//! disk image, save it, and inspect existing images.
//!
//! ```text
//! trace_gen gen <workload> <ops> <seed> <out.kindle>   generate + save
//! trace_gen info <image.kindle>                        inspect an image
//! ```

use std::process::ExitCode;

use kindle_trace::{Driver, TraceImage, WorkloadKind};

fn usage() -> ExitCode {
    eprintln!("usage:");
    eprintln!("  trace_gen gen <gapbs_pr|g500_sssp|ycsb_mem> <ops> <seed> <out.kindle>");
    eprintln!("  trace_gen info <image.kindle>");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") if args.len() == 5 => {
            let kind: WorkloadKind = match args[1].parse() {
                Ok(k) => k,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let (Ok(ops), Ok(seed)) = (args[2].parse::<u64>(), args[3].parse::<u64>()) else {
                return usage();
            };
            let (_, image) = Driver::new(seed).trace(kind, ops);
            let bytes = image.to_bytes();
            if let Err(e) = std::fs::write(&args[4], &bytes) {
                eprintln!("write {}: {e}", args[4]);
                return ExitCode::FAILURE;
            }
            println!(
                "wrote {} ({} records, {} areas, {} bytes)",
                args[4],
                image.records().len(),
                image.layout().areas().len(),
                bytes.len()
            );
            ExitCode::SUCCESS
        }
        Some("info") if args.len() == 2 => {
            let bytes = match std::fs::read(&args[1]) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("read {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            let image = match TraceImage::from_bytes(&bytes) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("parse {}: {e}", args[1]);
                    return ExitCode::FAILURE;
                }
            };
            println!("{}: {} records", args[1], image.records().len());
            println!("areas:");
            for (area, count) in image.area_op_counts() {
                println!(
                    "  {:<14} {:>8} KiB  {:>5}  {:>9} ops",
                    area.name,
                    area.size / 1024,
                    if area.nvm { "NVM" } else { "DRAM" },
                    count
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
