//! The Kindle *preparation component* (paper §II-B).
//!
//! The original framework traces applications with Intel Pin (plus SniP for
//! multi-threaded stack layouts), reads `/proc/pid/maps` for the virtual
//! memory layout, and bakes `(period, offset, operation, size, area)`
//! tuples into a disk image that a generated gemOS template program
//! replays. Pin and the real GAP / Graph500 / YCSB binaries are not
//! available offline, so this crate substitutes **synthetic tracers**: the
//! workload generators produce streams with the same op counts and
//! read/write mixes as Table II and locality profiles shaped after each
//! application, exercising the identical downstream code path (image →
//! template program → replay on the simulated machine).
//!
//! # Examples
//!
//! ```
//! use kindle_trace::{Driver, WorkloadKind};
//!
//! let (layout, image) = Driver::new(42).trace(WorkloadKind::YcsbMem, 10_000);
//! assert_eq!(image.records().len(), 10_000);
//! let frac_reads = image.records().iter()
//!     .filter(|r| r.op == kindle_types::AccessKind::Read).count() as f64 / 10_000.0;
//! assert!((frac_reads - 0.71).abs() < 0.02, "Table II: YCSB is 71% reads");
//! assert!(!layout.areas().is_empty());
//! ```

pub mod driver;
pub mod image;
pub mod layout;
pub mod record;
pub mod replay;
pub mod workloads;
pub mod zipf;

pub use driver::Driver;
pub use image::TraceImage;
pub use layout::{Area, AreaKind, MemoryLayout};
pub use record::{AreaId, TraceRecord};
pub use replay::ReplayProgram;
pub use workloads::{OpStream, WorkloadKind, WorkloadSpec};
pub use zipf::Zipf;
