//! Property tests — need a vendored `proptest`; enable with `--features proptest`.
#![cfg(feature = "proptest")]

//! Property tests for the preparation component.

use proptest::prelude::*;

use kindle_trace::{Driver, TraceImage, TraceRecord, WorkloadKind, Zipf};
use kindle_types::AccessKind;

fn arb_kind() -> impl Strategy<Value = WorkloadKind> {
    prop_oneof![
        Just(WorkloadKind::GapbsPr),
        Just(WorkloadKind::G500Sssp),
        Just(WorkloadKind::YcsbMem),
    ]
}

proptest! {
    /// Every generated record stays inside its declared area and matches
    /// Table II's read fraction within tolerance — for arbitrary seeds.
    #[test]
    fn streams_well_formed(kind in arb_kind(), seed in any::<u64>()) {
        let layout = kind.layout();
        let ops = 20_000u64;
        let mut reads = 0u64;
        for r in kind.stream(ops, seed) {
            let area = layout.area(r.area);
            prop_assert!(r.offset + r.size as u64 <= area.size);
            if r.op == AccessKind::Read {
                reads += 1;
            }
        }
        let frac = reads as f64 / ops as f64;
        let want = kind.spec().read_pct as f64 / 100.0;
        prop_assert!((frac - want).abs() < 0.03, "{kind}: {frac} vs {want}");
    }

    /// Image serialisation round-trips for arbitrary traces.
    #[test]
    fn image_round_trips(kind in arb_kind(), seed in any::<u64>(), ops in 1u64..3000) {
        let (_, image) = Driver::new(seed).trace(kind, ops);
        let restored = TraceImage::from_bytes(image.to_bytes()).unwrap();
        prop_assert_eq!(&restored, &image);
        prop_assert_eq!(restored.records().len() as u64, ops);
    }

    /// Record packing round-trips arbitrary field values.
    #[test]
    fn record_round_trips(
        period in any::<u64>(),
        offset in any::<u64>(),
        size in any::<u32>(),
        write in any::<bool>(),
        area in any::<u16>(),
    ) {
        let r = TraceRecord {
            period,
            offset,
            size,
            op: if write { AccessKind::Write } else { AccessKind::Read },
            area: kindle_trace::AreaId(area),
        };
        prop_assert_eq!(TraceRecord::from_bytes(&r.to_bytes()), r);
    }

    /// Zipf samples stay in range and lower ranks are (weakly) more likely
    /// for any exponent.
    #[test]
    fn zipf_in_range_and_skewed(n in 2usize..5000, s in 0.0f64..2.5, seed in any::<u64>()) {
        let mut z = Zipf::new(n, s, seed);
        let mut head = 0u64;
        let samples = 2000;
        for _ in 0..samples {
            let x = z.sample();
            prop_assert!(x < n);
            if x < n / 2 {
                head += 1;
            }
        }
        // The first half must receive at least its uniform share (minus
        // statistical slack).
        prop_assert!(head as f64 >= samples as f64 * 0.40, "head {head}/{samples}");
    }
}
