//! Simulated kernel threads: the scheduler must be deterministic, charge
//! `kthread_switch` exactly once per actual switch, and the sanitizer's
//! race rule must stay silent on properly barriered daemon work while
//! flagging a seeded unsynchronized cross-thread NVM write.

use kindle::prelude::*;
use kindle::types::sanitize::{self, InvariantChecker, ThreadId, Violation};
use kindle::types::{Cycles, MemKind, PAGE_SIZE};

/// A threaded workload where both daemons (checkpoint + migration) get
/// woken by their timers: NVM-heavy with a hot set to trigger HSCC.
fn threaded_workload() -> (u64, String, usize) {
    let cfg = MachineConfig::small()
        .with_checkpointing(Cycles::from_micros(20))
        .with_hscc(
            HsccConfig {
                fetch_threshold: 3,
                migration_interval: Cycles::from_micros(20),
                pool_pages: 64,
            },
            true,
        )
        .with_kthreads();
    let checker = InvariantChecker::new();
    let log = checker.log();
    let _guard = sanitize::install(Box::new(checker));
    let mut m = Machine::new(cfg).expect("machine boots");
    let pid = m.spawn_process().expect("spawn");
    let va = m.mmap(pid, 256 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).expect("mmap nvm");
    for i in 0..256u64 {
        m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write).expect("touch");
    }
    for round in 0..500u64 {
        let page = round % 16;
        m.access(pid, va + page * PAGE_SIZE as u64, AccessKind::Read).expect("hot read");
    }
    m.checkpoint_now().expect("checkpoint");
    let report = m.report();
    assert!(report.kthread_switches >= 4, "daemons never ran: {report:?}");
    (m.now().as_u64(), format!("{report:?}"), log.snapshot().len())
}

#[test]
fn threaded_run_is_deterministic_and_race_free() {
    let (now_a, report_a, violations_a) = threaded_workload();
    let (now_b, report_b, violations_b) = threaded_workload();
    assert_eq!(now_a, now_b, "thread interleaving must be deterministic");
    assert_eq!(report_a, report_b, "reports must match bit-for-bit");
    assert_eq!(violations_a, 0, "barriered daemon work must not trip the race rule");
    assert_eq!(violations_b, 0);
}

#[test]
fn kthread_switch_charged_exactly_once_per_switch() {
    // A long interval keeps the periodic timer quiet so the only daemon
    // activity is the three explicit checkpoints: each one is exactly two
    // switches (main -> ckptd -> main), and the *only* timing difference
    // against the kthreads-off run is the switch cost itself.
    let run = |kthreads: bool| {
        let mut cfg = MachineConfig::small().with_checkpointing(Cycles::from_millis(1000));
        if kthreads {
            cfg = cfg.with_kthreads();
        }
        let mut m = Machine::new(cfg).expect("machine boots");
        let pid = m.spawn_process().expect("spawn");
        let va = m.mmap(pid, 8 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).expect("mmap");
        for round in 0..3u64 {
            for i in 0..8u64 {
                m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write).expect("write");
            }
            let _ = round;
            m.checkpoint_now().expect("checkpoint");
        }
        let cost = m.kernel.costs.kthread_switch;
        (m.now().as_u64(), m.kernel.sched.switches(), cost)
    };
    let (now_off, switches_off, cost) = run(false);
    let (now_on, switches_on, _) = run(true);
    assert_eq!(switches_off, 0, "no kthreads, no switches");
    assert_eq!(switches_on, 6, "3 checkpoints x (to daemon + back)");
    assert_eq!(
        now_on - now_off,
        6 * cost,
        "each switch must charge kthread_switch exactly once (cost {cost})"
    );
}

#[test]
fn unsynchronized_cross_thread_nvm_write_is_flagged() {
    let checker = InvariantChecker::new();
    let log = checker.log();
    let _guard = sanitize::install(Box::new(checker));
    let mut m = Machine::new(MachineConfig::small()).expect("machine boots");
    let line = m.hw.mc.layout().range(MemKind::Nvm).base;
    assert!(log.is_empty(), "boot must be clean: {:?}", log.snapshot());

    // Seeded bug: two simulated threads store to the same NVM line with no
    // persist barrier or lock between them.
    m.hw.mc.store_bytes(line, &[0xAA; 8]);
    let prev = sanitize::set_current_thread(ThreadId(7));
    m.hw.mc.store_bytes(line, &[0xBB; 8]);
    sanitize::set_current_thread(prev);

    let races: Vec<_> = log
        .snapshot()
        .into_iter()
        .filter(|v| matches!(v, Violation::RacyNvmWrite { .. }))
        .collect();
    assert_eq!(races.len(), 1, "expected exactly one race, got {races:?}");
    match &races[0] {
        Violation::RacyNvmWrite { line: l, first, second, .. } => {
            assert_eq!(*l, line.as_u64());
            assert_eq!(*first, ThreadId::MAIN);
            assert_eq!(*second, ThreadId(7));
        }
        other => panic!("unexpected violation {other:?}"),
    }
}

#[test]
fn barrier_between_threads_silences_the_race_rule() {
    let checker = InvariantChecker::new();
    let log = checker.log();
    let _guard = sanitize::install(Box::new(checker));
    let mut m = Machine::new(MachineConfig::small()).expect("machine boots");
    let line = m.hw.mc.layout().range(MemKind::Nvm).base;

    m.hw.mc.store_bytes(line, &[0xAA; 8]);
    // An explicit drain orders the epochs: the second write happens-after.
    sanitize::emit(|| sanitize::Event::NvmDrain { cycle: m.now().as_u64() });
    let prev = sanitize::set_current_thread(ThreadId(7));
    m.hw.mc.store_bytes(line, &[0xBB; 8]);
    sanitize::set_current_thread(prev);

    assert!(
        !log.snapshot().iter().any(|v| matches!(v, Violation::RacyNvmWrite { .. })),
        "barriered writes must not race: {:?}",
        log.snapshot()
    );
}
