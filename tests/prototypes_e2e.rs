//! End-to-end behaviour of the SSP and HSCC prototypes on the full
//! machine, beyond what the unit tests cover: real access paths, real
//! TLB/ cache interactions, real timers.

use kindle::prelude::*;
use kindle::types::{PhysMem, PAGE_SIZE};

// ---------------------------------------------------------------------------
// SSP
// ---------------------------------------------------------------------------

fn ssp_machine(interval_ms: u64) -> Machine {
    let cfg = MachineConfig::small().with_ssp(SspConfig {
        consistency_interval: Cycles::from_millis(interval_ms),
        consolidation_interval: Cycles::from_millis(1),
    });
    Machine::new(cfg).unwrap()
}

#[test]
fn ssp_routes_fase_writes_to_shadow_pages() {
    let mut m = ssp_machine(5);
    let pid = m.spawn_process().unwrap();
    let va = m.mmap(pid, 4 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    // Open a FASE over the NVM range by hand (run_replay does this for
    // traces; here we drive the raw API).
    m.msr.nvm_range = Some((va, va + 4 * PAGE_SIZE as u64));
    let now = m.now();
    m.ssp.as_mut().unwrap().fase_begin(now);

    m.access(pid, va, AccessKind::Write).unwrap();
    let stats = m.ssp.as_ref().unwrap().stats().clone();
    assert_eq!(stats.pages_registered, 1, "first touch registers a shadow pair");

    // The TLB entry must carry the SSP extension with the written line
    // marked updated.
    let entry = m.tlb.peek_mut(va.page_number()).expect("entry resident");
    let ext = entry.ssp.expect("SSP extension attached");
    assert_eq!(ext.updated & 1, 1, "line 0 marked updated");

    // Interval end commits: updated moves into current.
    let costs = m.kernel.costs.clone();
    let engine = m.ssp.as_mut().unwrap();
    engine.end_interval(&mut m.hw, &mut m.tlb, &costs);
    let entry = m.tlb.peek_mut(va.page_number()).unwrap();
    let ext = entry.ssp.unwrap();
    assert_eq!(ext.updated, 0);
    assert_eq!(ext.current & 1, 1, "committed side flipped to shadow");
}

#[test]
fn ssp_consolidation_returns_committed_lines_to_original() {
    let mut m = ssp_machine(5);
    let pid = m.spawn_process().unwrap();
    let va = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    m.msr.nvm_range = Some((va, va + PAGE_SIZE as u64));
    let now = m.now();
    m.ssp.as_mut().unwrap().fase_begin(now);
    m.access(pid, va, AccessKind::Write).unwrap();

    // Commit the interval, then force the entry out of the TLB and run the
    // consolidation thread.
    let costs = m.kernel.costs.clone();
    {
        let engine = m.ssp.as_mut().unwrap();
        engine.end_interval(&mut m.hw, &mut m.tlb, &costs);
    }
    let entry = m.tlb.invalidate(va.page_number()).expect("entry resident");
    {
        let engine = m.ssp.as_mut().unwrap();
        engine.on_tlb_evict(&mut m.hw, &entry);
        engine.consolidate(&mut m.hw, &costs);
        let s = engine.stats();
        assert_eq!(s.tlb_evictions, 1);
        assert_eq!(s.pages_consolidated, 1);
        assert_eq!(s.lines_merged, 1, "one committed line copied back");
    }
    // After consolidation the metadata entry is clean again.
    let engine = m.ssp.as_ref().unwrap();
    let idx = engine.cache().lookup(va.page_number()).unwrap();
    let e = engine.cache().read(&mut m.hw, idx);
    assert_eq!(e.current, 0);
    assert!(!e.evicted);
}

#[test]
fn ssp_intervals_fire_from_the_timer_loop() {
    let mut m = ssp_machine(1);
    let pid = m.spawn_process().unwrap();
    let va = m.mmap(pid, 16 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    m.msr.nvm_range = Some((va, va + 16 * PAGE_SIZE as u64));
    let now = m.now();
    m.ssp.as_mut().unwrap().fase_begin(now);
    let deadline = m.now() + Cycles::from_millis(5);
    let mut i = 0u64;
    while m.now() < deadline {
        m.access(pid, va + (i % 16) * PAGE_SIZE as u64, AccessKind::Write).unwrap();
        i += 1;
    }
    let s = m.ssp.as_ref().unwrap().stats();
    assert!(s.intervals >= 3, "1 ms intervals over 5 ms: got {}", s.intervals);
    assert!(s.consolidations >= 3);
    assert!(s.data_lines_flushed > 0);
}

// ---------------------------------------------------------------------------
// HSCC
// ---------------------------------------------------------------------------

#[test]
fn hscc_end_to_end_migration_on_machine() {
    let cfg = MachineConfig::small().with_hscc(
        HsccConfig {
            fetch_threshold: 3,
            migration_interval: Cycles::from_millis(1),
            pool_pages: 64,
        },
        true,
    );
    let mut m = Machine::new(cfg).unwrap();
    let pid = m.spawn_process().unwrap();
    // 8 MiB of NVM, hammer a small hot set so LLC misses accumulate counts.
    let va = m.mmap(pid, 8 << 20, Prot::RW, MapFlags::NVM).unwrap();
    let hot_pages = 32u64;
    let total_pages = (8u64 << 20) / PAGE_SIZE as u64;
    // Build cache pressure: touch everything once, then hot loop.
    for i in 0..total_pages {
        m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write).unwrap();
    }
    for round in 0..2000u64 {
        let page = round % hot_pages;
        // Stride across lines to defeat the L1/L2 and miss in LLC often.
        let line = (round / hot_pages) % 64;
        m.access_sized(pid, va + page * PAGE_SIZE as u64 + line * 64, 8, AccessKind::Read).unwrap();
        // Interleave cold sweeps to evict the hot set from the LLC.
        let cold = total_pages - 1 - (round % (total_pages / 2));
        m.access(pid, va + cold * PAGE_SIZE as u64, AccessKind::Read).unwrap();
    }
    let s = m.report().hscc.expect("hscc enabled");
    assert!(s.intervals > 0, "migration intervals must have fired");
    assert!(s.pages_migrated > 0, "hot NVM pages must migrate to DRAM");
    // Migrated hot pages now resolve to DRAM frames.
    let mut in_dram = 0;
    for i in 0..hot_pages {
        let pte = m.kernel.translate(&mut m.hw, pid, va + i * PAGE_SIZE as u64).unwrap().unwrap();
        if m.kernel.pools.dram.contains(pte.pfn()) {
            in_dram += 1;
        }
    }
    assert!(in_dram > 0, "some hot pages must live in the DRAM pool now");
}

#[test]
fn hscc_hardware_only_baseline_charges_no_os_time() {
    let mk = |os_mode: bool| {
        let cfg = MachineConfig::small().with_hscc(
            HsccConfig {
                fetch_threshold: 1,
                migration_interval: Cycles::from_millis(1),
                pool_pages: 64,
            },
            os_mode,
        );
        let mut m = Machine::new(cfg).unwrap();
        let pid = m.spawn_process().unwrap();
        let va = m.mmap(pid, 2 << 20, Prot::RW, MapFlags::NVM).unwrap();
        // Run past several 1 ms migration intervals.
        let deadline = m.now() + Cycles::from_millis(4);
        let mut round = 0u64;
        while m.now() < deadline {
            let page = round % 16;
            // Periodically drop the caches so accesses miss the LLC and
            // the hardware counters accumulate.
            if round % 32 == 0 {
                m.hw.caches.invalidate_all();
            }
            m.access(pid, va + page * PAGE_SIZE as u64 + (round % 64) * 64, AccessKind::Read)
                .unwrap();
            round += 1;
        }
        m
    };
    let os = mk(true);
    let hw = mk(false);
    let os_stats = os.report().hscc.unwrap();
    let hw_stats = hw.report().hscc.unwrap();
    assert!(hw_stats.pages_migrated > 0, "baseline still migrates");
    assert_eq!(hw_stats.os_cycles(), Cycles::ZERO, "hardware-only baseline charges zero OS time");
    assert!(os_stats.os_cycles() > Cycles::ZERO);
    assert!(os.now() > hw.now(), "OS activities must cost simulated time");
}

#[test]
fn hscc_copyback_preserves_data() {
    let cfg = MachineConfig::small().with_hscc(
        HsccConfig {
            fetch_threshold: 1,
            migration_interval: Cycles::from_millis(1),
            pool_pages: 2,
        },
        true,
    );
    let mut m = Machine::new(cfg).unwrap();
    let pid = m.spawn_process().unwrap();
    let va = m.mmap(pid, 16 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    // Fault in page 0 and plant recognisable bytes in its frame.
    m.access(pid, va, AccessKind::Write).unwrap();
    let nvm_pfn = m.kernel.translate(&mut m.hw, pid, va).unwrap().unwrap().pfn();
    m.hw.write_bytes(nvm_pfn.base() + 123, b"precious");
    // Make page 0 hot so it migrates, then hammer other pages so the tiny
    // pool recycles it (dirty copy-back path).
    let deadline = m.now() + Cycles::from_millis(8);
    let mut round = 0u64;
    while m.now() < deadline {
        let page = if round % 3 == 0 { 0 } else { 1 + (round % 15) };
        if round % 32 == 0 {
            m.hw.caches.invalidate_all();
        }
        m.access(pid, va + page * PAGE_SIZE as u64 + (round % 64) * 64, AccessKind::Write).unwrap();
        round += 1;
    }
    // Wherever the page lives now, the bytes must still be there.
    let pfn = m.kernel.translate(&mut m.hw, pid, va).unwrap().unwrap().pfn();
    let mut buf = [0u8; 8];
    m.hw.read_bytes(pfn.base() + 123, &mut buf);
    assert_eq!(&buf, b"precious", "data must survive migration and copy-back");
    let s = m.report().hscc.unwrap();
    assert!(s.pages_migrated > 0);
}
