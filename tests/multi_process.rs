//! Multi-process persistence: several processes checkpointed into the
//! shared saved-state area, all recovered after a crash.

use kindle::prelude::*;
use kindle::types::PAGE_SIZE;

#[test]
fn three_processes_recover_together() {
    let cfg = MachineConfig::small()
        .with_pt_mode(PtMode::Rebuild)
        .with_checkpointing(Cycles::from_millis(5));
    let mut m = Machine::new(cfg).unwrap();

    let mut procs = Vec::new();
    for n in 0..3u64 {
        let pid = m.spawn_process().unwrap();
        let pages = 4 + 2 * n;
        let va = m.mmap(pid, pages * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
        for i in 0..pages {
            m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write).unwrap();
        }
        m.kernel.process_mut(pid).unwrap().regs.rip = 0xbeef_0000 + n;
        procs.push((pid, va, pages, 0xbeef_0000 + n));
    }

    m.checkpoint_now().unwrap();
    m.crash().unwrap();
    let report = m.recover().unwrap();
    assert_eq!(report.recovered_pids.len(), 3);

    for (pid, va, pages, rip) in procs {
        let proc = m.kernel.process(pid).unwrap();
        assert_eq!(proc.regs.rip, rip, "pid {pid}");
        assert_eq!(proc.aspace.mapped_pages(), pages, "pid {pid}");
        // Distinct processes recovered onto distinct frames.
        for i in 0..pages {
            let pte =
                m.kernel.translate(&mut m.hw, pid, va + i * PAGE_SIZE as u64).unwrap().unwrap();
            assert!(m.kernel.pools.nvm.is_allocated(pte.pfn()));
        }
        // And they resume independently.
        m.access(pid, va, AccessKind::Read).unwrap();
    }

    // Frames across processes never alias.
    let mut all_frames = Vec::new();
    for pid in m.kernel.pids() {
        let proc = m.kernel.process(pid).unwrap();
        proc.aspace.for_each_leaf(&mut m.hw, |_, _, pte, _| all_frames.push(pte.pfn()));
    }
    let count = all_frames.len();
    all_frames.sort();
    all_frames.dedup();
    assert_eq!(all_frames.len(), count, "recovered frames must not alias");
}

#[test]
fn processes_checkpoint_and_destroy_independently() {
    let cfg = MachineConfig::small()
        .with_pt_mode(PtMode::Persistent)
        .with_checkpointing(Cycles::from_millis(5));
    let mut m = Machine::new(cfg).unwrap();
    let a = m.spawn_process().unwrap();
    let b = m.spawn_process().unwrap();
    for pid in [a, b] {
        let va = m.mmap(pid, 2 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
        m.access(pid, va, AccessKind::Write).unwrap();
    }
    m.checkpoint_now().unwrap();

    // Destroy a; b keeps running and surviving crashes.
    let prev = m.hw.set_activity(kindle::cpu::Activity::Os);
    m.kernel.destroy_process(&mut m.hw, a).unwrap();
    m.hw.set_activity(prev);
    m.checkpoint_now().unwrap();
    m.crash().unwrap();
    let report = m.recover().unwrap();
    // a was checkpointed before destruction, so its slot may still exist;
    // what matters is that b recovers consistently.
    assert!(report.recovered_pids.contains(&b));
    assert!(m.kernel.process(b).is_ok());
}
