//! End-to-end framework tests: preparation → simulation for every
//! benchmark, with and without the prototype engines.

use kindle::prelude::*;

const OPS: u64 = 30_000;

#[test]
fn all_benchmarks_replay_end_to_end() {
    for wl in [WorkloadKind::GapbsPr, WorkloadKind::G500Sssp, WorkloadKind::YcsbMem] {
        let kindle = Kindle::prepare_streaming(wl, OPS, 3);
        let (replay, report) = kindle
            .simulate(MachineConfig::table_i(), ReplayOptions::default())
            .unwrap_or_else(|e| panic!("{wl}: {e}"));
        assert_eq!(replay.ops, OPS, "{wl}");
        assert!(replay.faults > 0, "{wl}: demand paging must happen");
        assert!(
            report.mem.nvm.reads + report.mem.nvm.writes > 0,
            "{wl}: NVM-tagged areas must reach the NVM device"
        );
        assert!(report.total_cycles > Cycles::ZERO);
    }
}

#[test]
fn replay_is_deterministic() {
    let kindle = Kindle::prepare_streaming(WorkloadKind::G500Sssp, OPS, 9);
    let (a, _) = kindle.simulate(MachineConfig::table_i(), ReplayOptions::default()).unwrap();
    let (b, _) = kindle.simulate(MachineConfig::table_i(), ReplayOptions::default()).unwrap();
    assert_eq!(a.cycles, b.cycles, "same trace, same machine, same time");
    assert_eq!(a.faults, b.faults);
}

#[test]
fn ssp_fase_produces_consistency_activity() {
    let kindle = Kindle::prepare_streaming(WorkloadKind::YcsbMem, OPS, 5);
    let cfg = MachineConfig::table_i().with_ssp(SspConfig::default());
    let (run, report) = kindle.simulate(cfg, ReplayOptions { fase: true, max_ops: None }).unwrap();
    let ssp = report.ssp.expect("ssp enabled");
    assert!(ssp.pages_registered > 0, "NVM pages must get shadow pairs");
    assert!(ssp.intervals >= 1, "at least the final interval commits");
    assert!(ssp.data_lines_flushed > 0);
    assert!(run.cycles > Cycles::ZERO);
    // Every registered page allocated one extra NVM frame.
    assert!(report.kernel.pages_mapped >= ssp.pages_registered);
}

#[test]
fn ssp_costs_more_than_baseline() {
    let kindle = Kindle::prepare_streaming(WorkloadKind::YcsbMem, OPS, 5);
    let (base, _) = kindle.simulate(MachineConfig::table_i(), ReplayOptions::default()).unwrap();
    let cfg = MachineConfig::table_i().with_ssp(SspConfig::default());
    let (ssp, _) = kindle.simulate(cfg, ReplayOptions { fase: true, max_ops: None }).unwrap();
    assert!(
        ssp.cycles > base.cycles,
        "consistency cannot be free: {} vs {}",
        ssp.cycles,
        base.cycles
    );
}

#[test]
fn hscc_migrates_and_speeds_up_hot_accesses() {
    let kindle = Kindle::prepare_streaming(WorkloadKind::GapbsPr, 100_000, 5);
    let hscc = HsccConfig { fetch_threshold: 5, ..Default::default() };
    // Hardware-only baseline vs no HSCC at all: migrations should *help*
    // (hot pages serve from DRAM) when the OS tax is off.
    let (plain, _) = kindle.simulate(MachineConfig::table_i(), ReplayOptions::default()).unwrap();
    let (hw_only, rep) = kindle
        .simulate(MachineConfig::table_i().with_hscc(hscc, false), ReplayOptions::default())
        .unwrap();
    let stats = rep.hscc.expect("hscc enabled");
    assert!(stats.pages_migrated > 0, "hot pages must migrate");
    assert!(
        hw_only.cycles < plain.cycles,
        "free migrations must help: {} vs plain {}",
        hw_only.cycles,
        plain.cycles
    );
}

#[test]
fn max_ops_caps_replay() {
    let kindle = Kindle::prepare_streaming(WorkloadKind::YcsbMem, OPS, 1);
    let (run, _) = kindle
        .simulate(MachineConfig::table_i(), ReplayOptions { fase: false, max_ops: Some(1000) })
        .unwrap();
    assert_eq!(run.ops, 1000);
}

#[test]
fn materialised_image_round_trips_through_bytes() {
    use kindle::trace::{Driver, ReplayProgram, TraceImage};
    let (_, image) = Driver::new(4).trace(WorkloadKind::GapbsPr, 5_000);
    let bytes = image.to_bytes();
    let restored = TraceImage::from_bytes(&bytes).unwrap();
    let program = ReplayProgram::from_image(restored);
    let mut machine = Machine::new(MachineConfig::table_i()).unwrap();
    let pid = machine.spawn_process().unwrap();
    let report = machine.run_replay(pid, &program, ReplayOptions::default()).unwrap();
    assert_eq!(report.ops, 5_000);
}
