//! The sanitizer must be an observer, never an actor: installing the no-op
//! sanitizer (or none) must not change a single simulated cycle, and the
//! real invariant checker must stay silent on a correct run.

use kindle::prelude::*;
use kindle::types::sanitize::{self, InvariantChecker, NopSanitizer};
use kindle::types::{Cycles, PAGE_SIZE};

/// A deterministic workload exercising every sanitized layer: frame
/// alloc/free, PTE install/clear, NVM writes and drains, checkpoint
/// publish, crash, and redo-log replay during recovery.
fn run_workload() -> (u64, String) {
    let cfg = MachineConfig::small().with_checkpointing(Cycles::from_millis(5));
    let mut m = Machine::new(cfg).expect("machine boots");
    let pid = m.spawn_process().expect("spawn");
    let nvm = m.mmap(pid, 16 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).expect("mmap nvm");
    let dram = m.mmap(pid, 4 * PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY).expect("mmap dram");
    for i in 0..16u64 {
        m.access(pid, nvm + i * PAGE_SIZE as u64, AccessKind::Write).expect("write nvm");
    }
    m.access(pid, dram, AccessKind::Write).expect("write dram");
    m.checkpoint_now().expect("checkpoint");
    for i in 0..4u64 {
        m.access(pid, nvm + i * PAGE_SIZE as u64, AccessKind::Write).expect("rewrite nvm");
    }
    m.crash().expect("crash");
    m.recover().expect("recover");
    m.access(pid, nvm, AccessKind::Read).expect("post-recovery read");
    m.munmap(pid, nvm, 16 * PAGE_SIZE as u64).expect("munmap");
    (m.now().as_u64(), format!("{:?}", m.report()))
}

#[test]
fn noop_sanitizer_changes_nothing() {
    let (bare_now, bare_report) = run_workload();
    let (nop_now, nop_report) = {
        let _guard = sanitize::install(Box::new(NopSanitizer));
        run_workload()
    };
    assert_eq!(bare_now, nop_now, "no-op sanitizer must not change simulated time");
    assert_eq!(bare_report, nop_report, "no-op sanitizer must not change the report");
}

#[test]
fn clean_run_has_no_violations() {
    let checker = InvariantChecker::new();
    let log = checker.log();
    let _guard = sanitize::install(Box::new(checker));
    let (now, _) = run_workload();
    assert!(now > 0);
    assert!(log.is_empty(), "correct machine run must be violation-free, got {:?}", log.snapshot());
}

#[test]
fn kthreads_flag_without_daemons_changes_nothing() {
    // Enabling the scheduler spawns daemons only for engines that exist;
    // with none configured, the thread table is just the main thread and
    // the run must be byte-identical to a plain machine.
    let run = |kthreads: bool| {
        let mut cfg = MachineConfig::small();
        if kthreads {
            cfg = cfg.with_kthreads();
        }
        let mut m = Machine::new(cfg).expect("machine boots");
        let pid = m.spawn_process().expect("spawn");
        let va = m.mmap(pid, 8 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).expect("mmap");
        for i in 0..8u64 {
            m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write).expect("write");
        }
        (m.now().as_u64(), format!("{:?}", m.report()))
    };
    let (plain_now, plain_report) = run(false);
    let (threaded_now, threaded_report) = run(true);
    assert_eq!(plain_now, threaded_now, "an empty thread table must cost nothing");
    assert_eq!(plain_report, threaded_report);
}

#[test]
fn checker_does_not_change_timing_either() {
    let (bare_now, _) = run_workload();
    let checker = InvariantChecker::new();
    let _guard = sanitize::install(Box::new(checker));
    let (checked_now, _) = run_workload();
    assert_eq!(bare_now, checked_now, "checker must not perturb simulated time");
}
