//! Paper §V-A validation: "we have validated the process persistence
//! feature of Kindle by crashing and restarting the application multiple
//! times" — under both page-table maintenance schemes.

use kindle::prelude::*;
use kindle::types::PAGE_SIZE;

fn persistence_machine(mode: PtMode) -> Machine {
    let cfg = MachineConfig::small().with_pt_mode(mode).with_checkpointing(Cycles::from_millis(5));
    Machine::new(cfg).expect("machine boots")
}

fn run_crash_cycle(mode: PtMode, cycles: usize) {
    let mut m = persistence_machine(mode);
    let pid = m.spawn_process().unwrap();
    let nvm = m.mmap(pid, 32 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    let dram = m.mmap(pid, 8 * PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY).unwrap();
    for i in 0..32u64 {
        m.access(pid, nvm + i * PAGE_SIZE as u64, AccessKind::Write).unwrap();
    }
    m.access(pid, dram, AccessKind::Write).unwrap();

    let mut expected_rip = 0u64;
    for round in 0..cycles {
        expected_rip = 0x1000 + round as u64;
        m.kernel.process_mut(pid).unwrap().regs.rip = expected_rip;
        m.checkpoint_now().unwrap();

        // Post-checkpoint work that must be rolled back.
        m.kernel.process_mut(pid).unwrap().regs.rip = 0xdead;
        for i in 0..4u64 {
            m.access(pid, nvm + i * PAGE_SIZE as u64, AccessKind::Write).unwrap();
        }

        m.crash().unwrap();
        let report = m.recover().unwrap();
        assert_eq!(report.recovered_pids, vec![pid], "round {round}");

        let proc = m.kernel.process(pid).unwrap();
        assert_eq!(
            proc.regs.rip, expected_rip,
            "round {round}: registers resume from last checkpoint"
        );
        assert_eq!(proc.vmas.len(), 2, "round {round}: VMA layout restored");
        // All 32 NVM pages must be reachable again.
        for i in 0..32u64 {
            let pte = m
                .kernel
                .translate(&mut m.hw, pid, nvm + i * PAGE_SIZE as u64)
                .unwrap()
                .unwrap_or_else(|| panic!("round {round}: page {i} lost"));
            assert!(pte.is_present());
        }
        // The process keeps running after recovery.
        m.access(pid, nvm, AccessKind::Read).unwrap();
    }
    assert_eq!(expected_rip, 0x1000 + cycles as u64 - 1);
}

#[test]
fn rebuild_survives_repeated_crashes() {
    run_crash_cycle(PtMode::Rebuild, 3);
}

#[test]
fn persistent_survives_repeated_crashes() {
    run_crash_cycle(PtMode::Persistent, 3);
}

#[test]
fn crash_before_first_checkpoint_loses_process() {
    let mut m = persistence_machine(PtMode::Rebuild);
    let pid = m.spawn_process().unwrap();
    m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    m.crash().unwrap();
    let report = m.recover().unwrap();
    assert!(
        report.recovered_pids.is_empty(),
        "no consistent copy ever published, nothing to recover"
    );
    assert!(m.kernel.process(pid).is_err());
}

#[test]
fn dram_pages_do_not_survive_but_nvm_pages_do() {
    let mut m = persistence_machine(PtMode::Rebuild);
    let pid = m.spawn_process().unwrap();
    let nvm = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    let dram = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY).unwrap();
    m.access(pid, nvm, AccessKind::Write).unwrap();
    m.access(pid, dram, AccessKind::Write).unwrap();
    m.checkpoint_now().unwrap();
    m.crash().unwrap();
    m.recover().unwrap();

    assert!(m.kernel.translate(&mut m.hw, pid, nvm).unwrap().is_some(), "NVM mapping restored");
    assert!(
        m.kernel.translate(&mut m.hw, pid, dram).unwrap().is_none(),
        "DRAM mapping dropped (frame contents were volatile)"
    );
    // But the DRAM VMA is still there, so the page faults back in.
    m.access(pid, dram, AccessKind::Read).unwrap();
    assert!(m.kernel.translate(&mut m.hw, pid, dram).unwrap().is_some());
}

#[test]
fn nvm_frames_not_reallocated_after_recovery() {
    // The persisted allocation bitmap must prevent recovered frames from
    // being handed out again.
    let mut m = persistence_machine(PtMode::Rebuild);
    let pid = m.spawn_process().unwrap();
    let nvm = m.mmap(pid, 8 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    for i in 0..8u64 {
        m.access(pid, nvm + i * PAGE_SIZE as u64, AccessKind::Write).unwrap();
    }
    let mut old_frames: Vec<_> = (0..8u64)
        .map(|i| {
            m.kernel.translate(&mut m.hw, pid, nvm + i * PAGE_SIZE as u64).unwrap().unwrap().pfn()
        })
        .collect();
    m.checkpoint_now().unwrap();
    m.crash().unwrap();
    m.recover().unwrap();

    // Allocate fresh NVM pages in a second process; none may collide.
    let pid2 = m.spawn_process().unwrap();
    let fresh = m.mmap(pid2, 16 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    for i in 0..16u64 {
        m.access(pid2, fresh + i * PAGE_SIZE as u64, AccessKind::Write).unwrap();
    }
    old_frames.sort();
    for i in 0..16u64 {
        let pfn = m
            .kernel
            .translate(&mut m.hw, pid2, fresh + i * PAGE_SIZE as u64)
            .unwrap()
            .unwrap()
            .pfn();
        assert!(
            old_frames.binary_search(&pfn).is_err(),
            "frame {pfn} double-allocated after recovery"
        );
    }
}

#[test]
fn durable_data_survives_crash_volatile_does_not() {
    // End-to-end durability semantics through the full machine: data
    // written to NVM survives only once clwb'd (or naturally evicted).
    let mut m = persistence_machine(PtMode::Rebuild);
    let pid = m.spawn_process().unwrap();
    let va = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    m.access(pid, va, AccessKind::Write).unwrap();
    let pfn = m.kernel.translate(&mut m.hw, pid, va).unwrap().unwrap().pfn();

    use kindle::types::PhysMem;
    m.hw.write_bytes(pfn.base(), b"durable!");
    m.hw.clwb(pfn.base());
    m.hw.sfence();
    m.hw.write_bytes(pfn.base() + 64, b"volatile");

    m.crash().unwrap();
    let mut buf = [0u8; 8];
    m.hw.read_bytes(pfn.base(), &mut buf);
    assert_eq!(&buf, b"durable!");
    m.hw.read_bytes(pfn.base() + 64, &mut buf);
    assert_eq!(&buf, &[0u8; 8], "un-flushed line rolls back");
}
