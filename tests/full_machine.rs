//! Cross-crate machine invariants under mixed workloads.

use kindle::prelude::*;
use kindle::types::PAGE_SIZE;

#[test]
fn frame_accounting_balances_after_churn() {
    let mut m = Machine::new(MachineConfig::small()).unwrap();
    let pid = m.spawn_process().unwrap();
    let dram0 = m.kernel.pools.dram.used();
    let nvm0 = m.kernel.pools.nvm.used();

    for round in 0..5u64 {
        let len = (round + 1) * 4 * PAGE_SIZE as u64;
        let va = m.mmap(pid, len, Prot::RW, MapFlags::NVM).unwrap();
        for i in 0..len / PAGE_SIZE as u64 {
            m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write).unwrap();
        }
        m.munmap(pid, va, len).unwrap();
    }
    assert_eq!(m.kernel.pools.dram.used(), dram0, "DRAM frames all reclaimed");
    assert_eq!(m.kernel.pools.nvm.used(), nvm0, "NVM frames all reclaimed");
}

#[test]
fn tlb_and_page_table_agree() {
    let mut m = Machine::new(MachineConfig::small()).unwrap();
    let pid = m.spawn_process().unwrap();
    let va = m.mmap(pid, 64 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    // Touch everything, then remap a page via mremap and verify the TLB
    // never serves a stale translation.
    for i in 0..64u64 {
        m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write).unwrap();
    }
    let new_va = m.mremap(pid, va, 64 * PAGE_SIZE as u64, 64 * PAGE_SIZE as u64).unwrap();
    assert!(m.access(pid, va, AccessKind::Read).is_err(), "old range must fault after mremap");
    m.access(pid, new_va, AccessKind::Read).unwrap();
    let pte = m.kernel.translate(&mut m.hw, pid, new_va).unwrap().unwrap();
    assert!(pte.is_present());
}

#[test]
fn simulated_time_is_monotonic_and_attributed() {
    let mut m = Machine::new(MachineConfig::small()).unwrap();
    let pid = m.spawn_process().unwrap();
    let va = m.mmap(pid, 16 * PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY).unwrap();
    let mut last = m.now();
    for i in 0..200u64 {
        m.access(pid, va + (i % 16) * PAGE_SIZE as u64, AccessKind::Read).unwrap();
        let now = m.now();
        assert!(now > last, "clock must advance on every access");
        last = now;
    }
    let r = m.report();
    assert_eq!(
        r.breakdown.total(),
        r.total_cycles,
        "every cycle is attributed to exactly one activity"
    );
}

#[test]
fn two_processes_are_isolated() {
    let mut m = Machine::new(MachineConfig::small()).unwrap();
    let a = m.spawn_process().unwrap();
    let b = m.spawn_process().unwrap();
    let va_a = m.mmap(a, 4 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    let va_b = m.mmap(b, 4 * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    m.access(a, va_a, AccessKind::Write).unwrap();
    m.access(b, va_b, AccessKind::Write).unwrap();
    let pfn_a = m.kernel.translate(&mut m.hw, a, va_a).unwrap().unwrap().pfn();
    let pfn_b = m.kernel.translate(&mut m.hw, b, va_b).unwrap().unwrap().pfn();
    assert_ne!(pfn_a, pfn_b, "distinct processes get distinct frames");
    // b never mapped a's address (address spaces are separate even though
    // the region search produced the same VA).
    assert_eq!(va_a, va_b, "both searches start at MMAP_BASE");
}

#[test]
fn oversized_mmap_fails_cleanly() {
    let mut m = Machine::new(MachineConfig::small()).unwrap();
    let pid = m.spawn_process().unwrap();
    // More NVM than the machine has: allocation must fail on fault, not
    // corrupt state.
    let va = m.mmap(pid, 512 << 20, Prot::RW, MapFlags::NVM).unwrap();
    let mut failed = false;
    for i in 0..(512 << 20) / PAGE_SIZE as u64 {
        match m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write) {
            Ok(_) => {}
            Err(KindleError::OutOfMemory { pool }) => {
                assert_eq!(pool, "nvm");
                failed = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert!(failed, "128 MiB machine cannot back 512 MiB of NVM");
    // The machine still works afterwards.
    let small = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::EMPTY).unwrap();
    m.access(pid, small, AccessKind::Write).unwrap();
}

#[test]
fn report_serializes_to_json() {
    let mut m = Machine::new(MachineConfig::small()).unwrap();
    let pid = m.spawn_process().unwrap();
    let va = m.mmap(pid, PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
    m.access(pid, va, AccessKind::Write).unwrap();
    let r = m.report();
    // SimReport is Serialize; smoke-test it through serde's derive without
    // pulling a JSON crate: the Debug rendering must be complete instead.
    let debug = format!("{r:?}");
    assert!(debug.contains("total_cycles"));
    assert!(debug.contains("page_faults"));
}
