#!/usr/bin/env bash
# The one gate: build, test, domain lint, and (when available) format
# check. Everything runs offline — the workspace has no external
# dependencies by design, and `kindle-check` enforces that it stays so.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests (workspace) =="
cargo test --workspace -q

echo "== kindle-check (KD001-KD008) =="
cargo run -q -p kindle-check

if cargo fmt --version >/dev/null 2>&1; then
    echo "== rustfmt =="
    cargo fmt --check
else
    echo "== rustfmt not installed; skipping format check =="
fi

echo "all checks passed"
