#!/usr/bin/env bash
# The one gate: build, test, domain lint, and (when available) format
# check. Everything runs offline — the workspace has no external
# dependencies by design, and `kindle-check` enforces that it stays so.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release

echo "== tests (workspace) =="
cargo test --workspace -q

echo "== allowlist justification guard =="
# Policy: fix, don't allowlist. Every check-allowlist.txt entry must be
# preceded by a `#` justification comment on the line directly above it.
awk '
    /^[[:space:]]*$/ { prev = ""; next }
    /^#/             { prev = "comment"; next }
    {
        if (prev != "comment") {
            printf "check-allowlist.txt:%d: entry lacks a justification comment on the line above: %s\n", NR, $0
            bad = 1
        }
        prev = "entry"
    }
    END { exit bad }
' check-allowlist.txt

echo "== kindle-check (KD001-KD013) =="
cargo run -q -p kindle-check -- --json CHECK_lint.json

if cargo fmt --version >/dev/null 2>&1; then
    echo "== rustfmt =="
    cargo fmt --check
else
    echo "== rustfmt not installed; skipping format check =="
fi

echo "all checks passed"
