//! Kindle — a comprehensive framework for exploring OS–architecture
//! interplay in hybrid memory systems (Rust reproduction).
//!
//! This is the workspace umbrella crate: it re-exports `kindle_core` (the
//! framework façade) and hosts the runnable examples under `examples/` and
//! the cross-crate integration tests under `tests/`.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! per-experiment index.
//!
//! # Examples
//!
//! ```
//! use kindle::prelude::*;
//!
//! let mut machine = Machine::new(MachineConfig::small())?;
//! let pid = machine.spawn_process()?;
//! let va = machine.mmap(pid, 4096, Prot::RW, MapFlags::NVM)?;
//! machine.access(pid, va, AccessKind::Write)?;
//! # Ok::<(), KindleError>(())
//! ```

pub use kindle_core::*;
