//! Multi-process crash recovery: three processes with differently sized
//! NVM working sets checkpoint together, the machine loses power, and one
//! reboot brings every mapping back — no process is recovered at another's
//! expense.
//!
//! Run with: `cargo run --release --example multi_process`

use kindle::prelude::*;
use kindle::types::PAGE_SIZE;

fn main() -> Result<()> {
    let cfg = MachineConfig::small()
        .with_pt_mode(PtMode::Rebuild)
        .with_checkpointing(Cycles::from_millis(5));
    let mut machine = Machine::new(cfg)?;

    // Three tenants with staggered footprints (4, 6, 8 NVM pages), each
    // touched end to end so every page is faulted in and mapped.
    let mut procs = Vec::new();
    for n in 0..3u64 {
        let pid = machine.spawn_process()?;
        let pages = 4 + 2 * n;
        let va = machine.mmap(pid, pages * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM)?;
        for i in 0..pages {
            machine.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write)?;
        }
        procs.push((pid, va, pages));
    }

    // Every mapping resolves to a live NVM frame before the crash.
    let mut pre = Vec::new();
    for &(pid, va, pages) in &procs {
        for i in 0..pages {
            let pte = machine
                .kernel
                .translate(&mut machine.hw, pid, va + i * PAGE_SIZE as u64)?
                .expect("touched page must be mapped");
            assert!(machine.kernel.pools.nvm.is_allocated(pte.pfn()));
            pre.push((pid, i, pte.pfn()));
        }
    }
    println!("pre-crash: {} NVM pages mapped across {} processes", pre.len(), procs.len());

    machine.checkpoint_now()?;
    machine.crash()?;
    let report = machine.recover()?;
    println!("recovered pids={:?} remapped={}", report.recovered_pids, report.pages_remapped);

    // All three survive, and every page translates to an allocated frame
    // again. Rebuild mode reconstructs page tables from checkpoint
    // metadata, so frame numbers may move — reachability is the contract.
    assert_eq!(report.recovered_pids.len(), procs.len(), "all processes recover");
    assert_eq!(report.pages_remapped as usize, pre.len(), "every NVM page is remapped");
    for &(pid, va, pages) in &procs {
        for i in 0..pages {
            let pte = machine
                .kernel
                .translate(&mut machine.hw, pid, va + i * PAGE_SIZE as u64)?
                .expect("page must be remapped after recovery");
            assert!(machine.kernel.pools.nvm.is_allocated(pte.pfn()));
            machine.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Read)?;
        }
    }
    println!("post-crash: all {} pages reachable and readable again", pre.len());
    Ok(())
}
