//! Hot/cold page placement with HSCC: DRAM as an OS-managed cache of NVM —
//! the capacity usage of hybrid memory from the paper's intro.
//!
//! Replays a graph-analytics-like trace and shows what the fetch threshold
//! does to migration volume and OS overhead (Fig. 6 / Tables V–VI in
//! miniature).
//!
//! Run with: `cargo run --release --example hot_cold_migration`

use kindle::prelude::*;

const OPS: u64 = 300_000;

fn main() -> Result<()> {
    let kindle = Kindle::prepare_streaming(WorkloadKind::GapbsPr, OPS, 11);
    println!("GAP PageRank-like trace: {OPS} ops\n");
    println!(
        "{:>9} | {:>10} | {:>10} | {:>8} | {:>9} | {:>13}",
        "threshold", "hw-only ms", "with-OS ms", "overhead", "migrated", "sel% / copy%"
    );
    println!("{}", "-".repeat(78));

    for threshold in [5u64, 25, 50] {
        let hscc = HsccConfig { fetch_threshold: threshold, ..Default::default() };
        // Baseline: hardware migrations only (free OS).
        let (hw, _) = kindle.simulate(
            MachineConfig::table_i().with_hscc(hscc.clone(), false),
            ReplayOptions::default(),
        )?;
        // Full system: OS selection + copy charged.
        let (os, report) = kindle
            .simulate(MachineConfig::table_i().with_hscc(hscc, true), ReplayOptions::default())?;
        let stats = report.hscc.expect("hscc enabled");
        println!(
            "{:>9} | {:>10.3} | {:>10.3} | {:>7.3}x | {:>9} | {:>5.1} / {:>5.1}",
            threshold,
            hw.cycles.as_millis_f64(),
            os.cycles.as_millis_f64(),
            os.cycles.as_u64() as f64 / hw.cycles.as_u64() as f64,
            stats.pages_migrated,
            stats.selection_share() * 100.0,
            (1.0 - stats.selection_share()) * 100.0,
        );
    }
    println!("\nhigher thresholds migrate fewer pages, shrinking the OS overhead");
    println!("that user-level simulators (the original HSCC used ZSim) cannot see.");
    Ok(())
}
