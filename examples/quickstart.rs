//! Quickstart: boot a hybrid-memory machine, allocate in DRAM and NVM via
//! the extended `mmap` API, and compare what the hardware actually charged.
//!
//! Run with: `cargo run --release --example quickstart`

use kindle::prelude::*;

fn main() -> Result<()> {
    // A Table I machine: 3 GB DDR4 DRAM + 2 GB PCM NVM, 32K/512K/2M caches.
    let mut machine = Machine::new(MachineConfig::table_i())?;
    let pid = machine.spawn_process()?;

    // The paper's Listing 1, in API form: one NVM allocation, one DRAM
    // allocation, a store to each.
    let nvm = machine.mmap(pid, 4096, Prot::RW, MapFlags::NVM)?; // MAP_NVM
    let dram = machine.mmap(pid, 4096, Prot::RW, MapFlags::EMPTY)?;
    machine.access(pid, nvm, AccessKind::Write)?; // ptr1[0] = 'A'
    machine.access(pid, dram, AccessKind::Write)?; // ptr2[0] = 'B'

    // Stream over both allocations and time the difference.
    let nvm_big = machine.mmap(pid, 4 << 20, Prot::RW, MapFlags::NVM)?;
    let dram_big = machine.mmap(pid, 4 << 20, Prot::RW, MapFlags::EMPTY)?;

    let t0 = machine.now();
    for page in 0..1024u64 {
        machine.access(pid, nvm_big + page * 4096, AccessKind::Write)?;
    }
    let nvm_time = machine.now() - t0;

    let t0 = machine.now();
    for page in 0..1024u64 {
        machine.access(pid, dram_big + page * 4096, AccessKind::Write)?;
    }
    let dram_time = machine.now() - t0;

    let report = machine.report();
    println!("Kindle quickstart");
    println!("-----------------");
    println!("NVM  area at {nvm} (and 4 MiB at {nvm_big})");
    println!("DRAM area at {dram} (and 4 MiB at {dram_big})");
    println!();
    println!("4 MiB first-touch sweep:");
    println!("  NVM : {:>10.3} us", nvm_time.as_micros_f64());
    println!("  DRAM: {:>10.3} us", dram_time.as_micros_f64());
    println!("  NVM/DRAM ratio: {:.2}x", nvm_time.as_u64() as f64 / dram_time.as_u64() as f64);
    println!();
    println!("machine report:\n{}", report.summary());
    Ok(())
}
