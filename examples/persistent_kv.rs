//! A YCSB-like key-value workload on NVM under SSP failure-atomic
//! sections: the scenario the paper's intro motivates for the persistence
//! usage of hybrid memory.
//!
//! Runs the same trace three times: no consistency, SSP with a 1 ms
//! interval, SSP with a 10 ms interval — showing the consistency-interval
//! trade-off of Fig. 5 on a single workload.
//!
//! Run with: `cargo run --release --example persistent_kv`

use kindle::prelude::*;

const OPS: u64 = 300_000;

fn main() -> Result<()> {
    // Preparation component: "trace" the YCSB-like benchmark.
    let kindle = Kindle::prepare_streaming(WorkloadKind::YcsbMem, OPS, 7);
    println!("prepared {} ops over {} areas", OPS, kindle.program().layout().areas().len());
    for area in kindle.program().layout().areas() {
        println!(
            "  area {:>10}: {:>8} KiB ({})",
            area.name,
            area.size / 1024,
            if area.nvm { "NVM" } else { "DRAM" }
        );
    }

    // 1. Baseline: no memory consistency.
    let (base, _) = kindle.simulate(MachineConfig::table_i(), ReplayOptions::default())?;
    println!("\nbaseline (no consistency): {:9.3} ms", base.cycles.as_millis_f64());

    // 2/3. SSP with different consistency intervals.
    for interval_ms in [1u64, 10] {
        let cfg = MachineConfig::table_i().with_ssp(SspConfig {
            consistency_interval: Cycles::from_millis(interval_ms),
            consolidation_interval: Cycles::from_millis(1),
        });
        let (run, report) = kindle.simulate(cfg, ReplayOptions { fase: true, max_ops: None })?;
        let ssp = report.ssp.expect("ssp enabled");
        println!(
            "SSP {interval_ms:>2} ms interval:      {:9.3} ms ({:.2}x) — {} intervals, {} shadow pages, {} lines flushed, {} consolidated",
            run.cycles.as_millis_f64(),
            run.cycles.as_u64() as f64 / base.cycles.as_u64() as f64,
            ssp.intervals,
            ssp.pages_registered,
            ssp.data_lines_flushed,
            ssp.pages_consolidated,
        );
    }
    println!("\nwider consistency intervals amortise the flush/metadata storm (Fig. 5).");
    Ok(())
}
