use kindle::prelude::*;
use kindle::types::PAGE_SIZE;

fn main() {
    let cfg = MachineConfig::small()
        .with_pt_mode(PtMode::Rebuild)
        .with_checkpointing(Cycles::from_millis(5));
    let mut m = Machine::new(cfg).unwrap();
    let mut procs = Vec::new();
    for n in 0..3u64 {
        let pid = m.spawn_process().unwrap();
        let pages = 4 + 2 * n;
        let va = m.mmap(pid, pages * PAGE_SIZE as u64, Prot::RW, MapFlags::NVM).unwrap();
        for i in 0..pages {
            m.access(pid, va + i * PAGE_SIZE as u64, AccessKind::Write).unwrap();
        }
        procs.push((pid, va, pages));
    }
    for &(pid, va, pages) in &procs {
        for i in 0..pages {
            let pte =
                m.kernel.translate(&mut m.hw, pid, va + i * PAGE_SIZE as u64).unwrap().unwrap();
            println!(
                "pre pid={pid} page{i} pfn={} alloc={}",
                pte.pfn(),
                m.kernel.pools.nvm.is_allocated(pte.pfn())
            );
        }
    }
    m.checkpoint_now().unwrap();
    m.crash().unwrap();
    let r = m.recover().unwrap();
    println!("recovered {:?} remapped {}", r.recovered_pids, r.pages_remapped);
    for &(pid, va, pages) in &procs {
        for i in 0..pages {
            match m.kernel.translate(&mut m.hw, pid, va + i * PAGE_SIZE as u64).unwrap() {
                Some(pte) => println!(
                    "post pid={pid} page{i} pfn={} alloc={}",
                    pte.pfn(),
                    m.kernel.pools.nvm.is_allocated(pte.pfn())
                ),
                None => println!("post pid={pid} page{i} UNMAPPED"),
            }
        }
    }
}
