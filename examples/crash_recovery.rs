//! Process persistence end to end: run a process with periodic
//! checkpointing, pull the plug, reboot, and resume it — under both
//! page-table maintenance schemes.
//!
//! Run with: `cargo run --release --example crash_recovery`

use kindle::prelude::*;

fn demo(mode: PtMode) -> Result<()> {
    println!("== {mode:?} scheme ==");
    let cfg =
        MachineConfig::table_i().with_pt_mode(mode).with_checkpointing(Cycles::from_millis(10));
    let mut machine = Machine::new(cfg)?;
    let pid = machine.spawn_process()?;

    // A "database" of 64 NVM pages, plus some scratch DRAM.
    let db = machine.mmap(pid, 64 * 4096, Prot::RW, MapFlags::NVM)?;
    let scratch = machine.mmap(pid, 16 * 4096, Prot::RW, MapFlags::EMPTY)?;
    for i in 0..64u64 {
        machine.access(pid, db + i * 4096, AccessKind::Write)?;
    }
    machine.access(pid, scratch, AccessKind::Write)?;
    machine.kernel.process_mut(pid)?.regs.rip = 0x4242;

    // Make the state durable, then crash mid-flight.
    machine.checkpoint_now()?;
    for i in 0..8u64 {
        machine.access(pid, db + i * 4096, AccessKind::Write)?;
    }
    println!("  crash at {} (64 NVM pages mapped)", machine.now());
    machine.crash()?;

    // Reboot path: the kernel is fresh; recover from the saved state.
    let report = machine.recover()?;
    println!(
        "  recovered pids={:?} remapped={} dram-dropped={} in {}",
        report.recovered_pids, report.pages_remapped, report.dram_entries_dropped, report.cycles
    );

    // The process is resumable: registers restored, NVM pages reachable.
    let (rip, vmas) = {
        let proc = machine.kernel.process(pid)?;
        (proc.regs.rip, proc.vmas.len())
    };
    assert_eq!(rip, 0x4242, "registers restored");
    machine.access(pid, db, AccessKind::Read)?;
    println!("  resume OK: rip={rip:#x}, vmas={vmas}, first page readable");
    // DRAM contents were volatile: the scratch page faults in again fresh.
    machine.access(pid, scratch, AccessKind::Read)?;
    println!("  scratch (DRAM) re-faulted: {} faults total", machine.report().kernel.page_faults);
    Ok(())
}

fn main() -> Result<()> {
    demo(PtMode::Rebuild)?;
    demo(PtMode::Persistent)?;
    Ok(())
}
